/**
 * @file
 * Unit tests for the pipelined Channel and the simulation Kernel.
 */

#include <gtest/gtest.h>

#include "sim/channel.hpp"
#include "sim/clocked.hpp"
#include "sim/kernel.hpp"

namespace frfc {
namespace {

TEST(Channel, DeliversAfterLatency)
{
    Channel<int> ch("test", 3);
    ch.push(0, 42);
    EXPECT_TRUE(ch.drain(0).empty());
    EXPECT_TRUE(ch.drain(1).empty());
    EXPECT_TRUE(ch.drain(2).empty());
    const auto got = ch.drain(3);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 42);
}

TEST(Channel, DrainEmptiesSlot)
{
    Channel<int> ch("test", 1);
    ch.push(0, 7);
    EXPECT_EQ(ch.drain(1).size(), 1u);
    EXPECT_TRUE(ch.drain(1).empty());
}

TEST(Channel, PipelinesBackToBack)
{
    // One push and one drain per cycle, as components use channels: the
    // wire sustains full bandwidth regardless of its latency.
    Channel<int> ch("test", 4);
    for (Cycle t = 0; t < 14; ++t) {
        if (t < 10)
            ch.push(t, static_cast<int>(t));
        const auto got = ch.drain(t);
        if (t >= 4) {
            ASSERT_EQ(got.size(), 1u) << "cycle " << t;
            EXPECT_EQ(got[0], static_cast<int>(t - 4));
        } else {
            EXPECT_TRUE(got.empty());
        }
    }
}

TEST(ChannelDeath, WriterOverrunningReaderPanics)
{
    // A writer may not run a full slot-ring wrap ahead of the reader
    // (ring size = latency+2 rounded up to a power of two, so 4 here);
    // the wheel catches the overrun instead of corrupting.
    Channel<int> ch("test", 1);
    ch.push(0, 0);
    ch.push(1, 1);
    ch.push(2, 2);
    ch.push(3, 3);
    EXPECT_DEATH(ch.push(4, 4), "undrained");
}

TEST(Channel, WidthAllowsMultiplePerCycle)
{
    Channel<int> ch("test", 2, 3);
    ch.push(5, 1);
    ch.push(5, 2);
    ch.push(5, 3);
    const auto got = ch.drain(7);
    EXPECT_EQ(got.size(), 3u);
}

TEST(Channel, CanPushHonorsWidth)
{
    Channel<int> ch("test", 1, 2);
    EXPECT_TRUE(ch.canPush(0));
    ch.push(0, 1);
    EXPECT_TRUE(ch.canPush(0));
    ch.push(0, 2);
    EXPECT_FALSE(ch.canPush(0));
    EXPECT_TRUE(ch.canPush(1));
}

TEST(Channel, HasArrivalChecksWithoutDraining)
{
    Channel<int> ch("test", 2);
    ch.push(0, 9);
    EXPECT_FALSE(ch.hasArrival(1));
    EXPECT_TRUE(ch.hasArrival(2));
    ch.drain(2);
    EXPECT_FALSE(ch.hasArrival(2));
}

TEST(Channel, SurvivesLongRuns)
{
    // Exercise wheel wraparound far past the slot count.
    Channel<int> ch("test", 2);
    for (Cycle t = 0; t < 1000; ++t) {
        if (t % 3 == 0)
            ch.push(t, static_cast<int>(t));
        const auto got = ch.drain(t);
        if (t >= 2 && (t - 2) % 3 == 0) {
            ASSERT_EQ(got.size(), 1u);
            EXPECT_EQ(got[0], static_cast<int>(t - 2));
        } else {
            EXPECT_TRUE(got.empty());
        }
    }
}

TEST(ChannelDeath, OverWidthPushPanics)
{
    Channel<int> ch("test", 1, 1);
    ch.push(0, 1);
    EXPECT_DEATH(ch.push(0, 2), "width");
}

/** Counts its own ticks. */
class Counter : public Clocked
{
  public:
    Counter() : Clocked("counter") {}
    void tick(Cycle) override { ++ticks; }
    Cycle nextWake(Cycle now) const override { return now + 1; }
    int ticks = 0;
};

TEST(Kernel, RunsExactCycleCount)
{
    Kernel kernel;
    Counter counter;
    kernel.add(&counter);
    kernel.run(25);
    EXPECT_EQ(counter.ticks, 25);
    EXPECT_EQ(kernel.now(), 25);
}

TEST(Kernel, RunUntilStopsOnPredicate)
{
    Kernel kernel;
    Counter counter;
    kernel.add(&counter);
    const bool done = kernel.runUntil(
        [&counter] { return counter.ticks >= 10; }, 100);
    EXPECT_TRUE(done);
    EXPECT_EQ(counter.ticks, 10);
}

TEST(Kernel, RunUntilRespectsBudget)
{
    Kernel kernel;
    Counter counter;
    kernel.add(&counter);
    const bool done = kernel.runUntil([] { return false; }, 50);
    EXPECT_FALSE(done);
    EXPECT_EQ(kernel.now(), 50);
}

/** Producer/consumer pair proving tick order cannot matter. */
class Producer : public Clocked
{
  public:
    explicit Producer(Channel<int>* out) : Clocked("prod"), out_(out) {}
    void
    tick(Cycle now) override
    {
        out_->push(now, static_cast<int>(now));
    }
    Cycle nextWake(Cycle now) const override { return now + 1; }

  private:
    Channel<int>* out_;
};

class Consumer : public Clocked
{
  public:
    explicit Consumer(Channel<int>* in) : Clocked("cons"), in_(in) {}
    void
    tick(Cycle now) override
    {
        for (int v : in_->drain(now)) {
            EXPECT_EQ(v, static_cast<int>(now - 2));
            ++received;
        }
    }
    Cycle nextWake(Cycle now) const override { return now + 1; }
    int received = 0;

  private:
    Channel<int>* in_;
};

TEST(Kernel, ChannelDecouplesTickOrder)
{
    Channel<int> ch("pc", 2);
    Producer prod(&ch);
    Consumer cons(&ch);

    // Consumer registered BEFORE producer: with latency >= 1 this must
    // not change observable behavior.
    Kernel kernel;
    kernel.add(&cons);
    kernel.add(&prod);
    kernel.run(100);
    EXPECT_EQ(cons.received, 98);
}

}  // namespace
}  // namespace frfc
