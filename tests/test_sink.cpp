/**
 * @file
 * Unit tests for the ejection sink and remaining endpoint plumbing.
 */

#include <gtest/gtest.h>

#include "network/ejection_sink.hpp"
#include "proto/packet_registry.hpp"

namespace frfc {
namespace {

Flit
makeFlit(PacketId id, int seq, NodeId dest)
{
    Flit f;
    f.packet = id;
    f.seq = seq;
    f.dest = dest;
    f.payload = Flit::expectedPayload(id, seq);
    return f;
}

TEST(EjectionSink, DrainsAllRegisteredChannels)
{
    PacketRegistry registry;
    EjectionSink sink("sink", &registry);
    Channel<Flit> a("a", 1);
    Channel<Flit> b("b", 1);
    sink.addChannel(&a, 3);
    sink.addChannel(&b, 4);

    const PacketId p0 = registry.create(0, 3, 1, 0);
    const PacketId p1 = registry.create(1, 4, 1, 0);
    a.push(0, makeFlit(p0, 0, 3));
    b.push(0, makeFlit(p1, 0, 4));
    sink.tick(1);
    EXPECT_EQ(registry.packetsDelivered(), 2);
}

TEST(EjectionSink, RespectsChannelLatency)
{
    PacketRegistry registry;
    EjectionSink sink("sink", &registry);
    Channel<Flit> ch("c", 3);
    sink.addChannel(&ch, 3);
    const PacketId id = registry.create(0, 3, 1, 0);
    ch.push(0, makeFlit(id, 0, 3));
    sink.tick(1);
    sink.tick(2);
    EXPECT_EQ(registry.packetsDelivered(), 0);
    sink.tick(3);
    EXPECT_EQ(registry.packetsDelivered(), 1);
}

TEST(EjectionSink, LatencyUsesEjectionCycle)
{
    PacketRegistry registry;
    registry.startSampling(1);
    EjectionSink sink("sink", &registry);
    Channel<Flit> ch("c", 1);
    sink.addChannel(&ch, 3);
    const PacketId id = registry.create(0, 3, 1, 100);
    Flit f = makeFlit(id, 0, 3);
    ch.push(140, f);
    sink.tick(141);
    EXPECT_DOUBLE_EQ(registry.sampleLatency().mean(), 41.0);
}

TEST(Clocked, NameIsPreserved)
{
    PacketRegistry registry;
    EjectionSink sink("the-sink", &registry);
    EXPECT_EQ(sink.name(), "the-sink");
}

}  // namespace
}  // namespace frfc
