/**
 * @file
 * Unit tests for the open-loop endpoints: VcSource credit pacing and
 * FrSource control-flit construction and injection scheduling.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/config.hpp"
#include "frfc/fr_source.hpp"
#include "proto/packet_registry.hpp"
#include "traffic/generator.hpp"
#include "topology/mesh.hpp"
#include "vc/vc_source.hpp"

namespace frfc {
namespace {

/** Emits exactly one packet, to a fixed destination, at cycle 0. */
class OneShotGenerator : public PacketGenerator
{
  public:
    OneShotGenerator(NodeId dest, int length)
        : dest_(dest), length_(length)
    {
    }

    std::optional<GeneratedPacket>
    generate(const WorkloadContext&) override
    {
        if (fired_)
            return std::nullopt;
        fired_ = true;
        return GeneratedPacket{dest_, length_};
    }

    GeneratorInfo
    describe() const override
    {
        GeneratorInfo info;
        info.kind = "oneshot";
        return info;
    }

  private:
    NodeId dest_;
    int length_;
    bool fired_ = false;
};

TEST(VcSource, StreamsWholePacketUnderCredits)
{
    PacketRegistry registry;
    OneShotGenerator gen(3, 5);
    VcSource source("s", 0, &gen, &registry, 2, 4, false, Rng(1));
    Channel<Flit> data("d", 1);
    Channel<Credit> credit("c", 1, 2);
    source.connectDataOut(&data);
    source.connectCreditIn(&credit);

    std::vector<Flit> sent;
    for (Cycle t = 0; t < 20; ++t) {
        source.tick(t);
        for (const Flit& f : data.drain(t + 1))
            sent.push_back(f);
    }
    // 2 VCs x 4 credits = 8 slots, but a 5-flit packet fits in... one
    // VC has only 4: the source stalls after 4 flits until credits
    // return.
    ASSERT_EQ(sent.size(), 4u);
    EXPECT_TRUE(sent[0].head);
    for (std::size_t i = 0; i < sent.size(); ++i) {
        EXPECT_EQ(sent[i].seq, static_cast<int>(i));
        EXPECT_EQ(sent[i].vc, sent[0].vc) << "packet split across VCs";
        EXPECT_EQ(sent[i].dest, 3);
    }
    EXPECT_EQ(source.queueLength(), 1);  // packet still in flight

    // One returned credit releases the remaining flit.
    credit.push(20, Credit{sent[0].vc});
    for (Cycle t = 21; t < 25; ++t) {
        source.tick(t);
        for (const Flit& f : data.drain(t + 1))
            sent.push_back(f);
    }
    ASSERT_EQ(sent.size(), 5u);
    EXPECT_TRUE(sent[4].tail);
    EXPECT_EQ(source.queueLength(), 0);
}

TEST(VcSource, GeneratesNothingWhenDisabled)
{
    PacketRegistry registry;
    OneShotGenerator gen(3, 5);
    VcSource source("s", 0, &gen, &registry, 2, 4, false, Rng(1));
    Channel<Flit> data("d", 1);
    source.connectDataOut(&data);
    source.setGenerating(false);
    for (Cycle t = 0; t < 10; ++t) {
        source.tick(t);
        EXPECT_TRUE(data.drain(t + 1).empty());
    }
    EXPECT_EQ(registry.packetsCreated(), 0);
}

struct FrSourceHarness
{
    explicit FrSourceHarness(int length, FrParams params)
        : gen(3, length),
          source("s", 0, &gen, &registry, params, Rng(1)),
          ctrl("ctl", params.ctrlLinkLatency, params.ctrlWidth),
          data("d", 1),
          frc("frc", 1, 8),
          ctc("ctc", 1, params.ctrlWidth)
    {
        source.connectCtrlOut(&ctrl);
        source.connectDataOut(&data);
        source.connectFrCreditIn(&frc);
        source.connectCtrlCreditIn(&ctc);
    }

    /**
     * Tick once, collecting emissions and emulating the local router:
     * every accepted data flit frees its input buffer shortly after
     * (FrCredit), and every forwarded control flit frees its control
     * buffer slot (Credit) — without this echo the source runs out of
     * credits by design.
     */
    void
    step(Cycle t, std::vector<ControlFlit>* ctrl_sent,
         std::vector<Flit>* data_sent)
    {
        source.tick(t);
        for (const ControlFlit& cf : ctrl.drain(t + 1)) {
            ctc.push(t + 1, Credit{cf.vc});
            if (ctrl_sent != nullptr)
                ctrl_sent->push_back(cf);
        }
        for (const Flit& f : data.drain(t + 1)) {
            frc.push(t + 1, FrCredit{t + 3});
            if (data_sent != nullptr)
                data_sent->push_back(f);
        }
    }

    PacketRegistry registry;
    OneShotGenerator gen;
    FrSource source;
    Channel<ControlFlit> ctrl;
    Channel<Flit> data;
    Channel<FrCredit> frc;
    Channel<Credit> ctc;
};

TEST(FrSource, EmitsOneControlFlitPerDataFlitWhenDIsOne)
{
    FrParams params;
    FrSourceHarness h(5, params);
    std::vector<ControlFlit> ctrl_sent;
    std::vector<Flit> data_sent;
    for (Cycle t = 0; t < 30; ++t)
        h.step(t, &ctrl_sent, &data_sent);
    ASSERT_EQ(ctrl_sent.size(), 5u);
    EXPECT_EQ(data_sent.size(), 5u);
    EXPECT_TRUE(ctrl_sent.front().head);
    EXPECT_TRUE(ctrl_sent.back().tail);
    for (std::size_t i = 1; i < ctrl_sent.size(); ++i) {
        EXPECT_FALSE(ctrl_sent[i].head);
        EXPECT_EQ(ctrl_sent[i].vc, ctrl_sent[0].vc);
        EXPECT_EQ(ctrl_sent[i].numEntries, 1);
    }
}

TEST(FrSource, WideControlFlitsChunkEntries)
{
    FrParams params;
    params.flitsPerControl = 4;
    FrSourceHarness h(9, params);
    std::vector<ControlFlit> ctrl_sent;
    for (Cycle t = 0; t < 40; ++t)
        h.step(t, &ctrl_sent, nullptr);
    // Head leads flit 0; two body flits lead 4 each: 1 + ceil(8/4) = 3.
    ASSERT_EQ(ctrl_sent.size(), 3u);
    EXPECT_EQ(ctrl_sent[0].numEntries, 1);
    EXPECT_EQ(ctrl_sent[1].numEntries, 4);
    EXPECT_EQ(ctrl_sent[2].numEntries, 4);
    EXPECT_TRUE(ctrl_sent[2].tail);
}

TEST(FrSource, ControlPrecedesDataArrivalTimes)
{
    FrParams params;
    FrSourceHarness h(5, params);
    std::vector<std::pair<Cycle, ControlFlit>> ctrl_sent;
    std::vector<Cycle> data_arrivals;
    for (Cycle t = 0; t < 30; ++t) {
        std::vector<ControlFlit> ctrl_now;
        std::vector<Flit> data_now;
        h.step(t, &ctrl_now, &data_now);
        for (const ControlFlit& cf : ctrl_now)
            ctrl_sent.emplace_back(t + 1, cf);
        for (std::size_t i = 0; i < data_now.size(); ++i)
            data_arrivals.push_back(t + 1);
    }
    ASSERT_EQ(ctrl_sent.size(), 5u);
    ASSERT_EQ(data_arrivals.size(), 5u);
    // Each control flit's recorded arrival time matches the cycle its
    // data flit actually reaches the router's input.
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(ctrl_sent[i].second.entries[0].arrival,
                  data_arrivals[i]);
}

TEST(FrSource, LeadTimeDefersData)
{
    FrParams params;
    params.leadTime = 6;
    params.dataLinkLatency = 1;
    FrSourceHarness h(1, params);
    Cycle ctrl_at = -1;
    Cycle data_at = -1;
    for (Cycle t = 0; t < 30; ++t) {
        h.source.tick(t);
        if (!h.ctrl.drain(t + 1).empty())
            ctrl_at = t + 1;
        if (!h.data.drain(t + 1).empty())
            data_at = t + 1;
    }
    ASSERT_GE(ctrl_at, 0);
    ASSERT_GE(data_at, 0);
    EXPECT_GE(data_at - ctrl_at, 5);
}

TEST(FrSource, StallsWithoutControlCredits)
{
    FrParams params;
    params.ctrlVcDepth = 1;  // one credit per control VC
    FrSourceHarness h(5, params);
    std::vector<ControlFlit> ctrl_sent;
    for (Cycle t = 0; t < 20; ++t) {
        h.source.tick(t);
        for (const ControlFlit& cf : h.ctrl.drain(t + 1))
            ctrl_sent.push_back(cf);
        h.data.drain(t + 1);
    }
    EXPECT_EQ(ctrl_sent.size(), 1u);  // credit never returned

    // Returning credits lets the rest flow.
    for (Cycle t = 20; t < 40; ++t) {
        if (ctrl_sent.size() < 5)
            h.ctc.push(t, Credit{ctrl_sent[0].vc});
        h.source.tick(t);
        for (const ControlFlit& cf : h.ctrl.drain(t + 1))
            ctrl_sent.push_back(cf);
        h.data.drain(t + 1);
    }
    EXPECT_EQ(ctrl_sent.size(), 5u);
}

}  // namespace
}  // namespace frfc
