/**
 * @file
 * Cross-scheme property tests: invariants that must hold for every
 * flow-control method, seed, and load — plus the paper's qualitative
 * ordering claims on a reduced mesh.
 */

#include <gtest/gtest.h>

#include "harness/presets.hpp"
#include "harness/sweep.hpp"
#include "network/network.hpp"
#include "network/runner.hpp"
#include "proto/packet_registry.hpp"
#include "topology/topology.hpp"

namespace frfc {
namespace {

RunOptions
fast()
{
    RunOptions opt;
    opt.samplePackets = 400;
    opt.minWarmup = 500;
    opt.maxWarmup = 2000;
    opt.maxCycles = 80000;
    return opt;
}

/** (preset, mode, load, seed) sweep. */
struct Point
{
    const char* preset;
    bool leading;
    double load;
    int seed;
};

class Conservation : public ::testing::TestWithParam<Point>
{
};

TEST_P(Conservation, EveryInjectedFlitIsDeliveredExactlyOnce)
{
    const Point p = GetParam();
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    applyPreset(cfg, p.preset);
    if (p.leading)
        applyLeadingControl(cfg, 1);
    cfg.set("workload.offered", p.load);
    cfg.set("seed", p.seed);

    auto net = makeNetwork(cfg);
    const RunResult r = runMeasurement(*net, fast());
    ASSERT_TRUE(r.complete)
        << p.preset << " load " << p.load << " seed " << p.seed;

    // Registry verified payload/dest/duplication on every flit; here we
    // additionally stop injection and drain the network completely.
    net->setGenerating(false);
    PacketRegistry& reg = net->registry();
    net->kernel().runUntil([&reg] { return reg.packetsInFlight() == 0; },
                           20000);
    EXPECT_EQ(reg.packetsInFlight(), 0) << "network failed to drain";
    EXPECT_EQ(reg.flitsDelivered(),
              reg.packetsCreated() * cfg.getInt("workload.packet_length"));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conservation,
    ::testing::Values(Point{"vc8", false, 0.15, 1},
                      Point{"vc8", false, 0.40, 2},
                      Point{"vc16", false, 0.40, 3},
                      Point{"wormhole8", false, 0.15, 4},
                      Point{"fr6", false, 0.15, 1},
                      Point{"fr6", false, 0.40, 2},
                      Point{"fr6", true, 0.40, 5},
                      Point{"fr13", false, 0.40, 3},
                      Point{"fr13", true, 0.15, 6}));

class LatencyMonotonic : public ::testing::TestWithParam<const char*>
{
};

TEST_P(LatencyMonotonic, LatencyRisesWithLoad)
{
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    applyPreset(cfg, GetParam());
    const auto curve = latencyCurve(cfg, {0.10, 0.45, 0.70}, fast());
    ASSERT_TRUE(curve[0].complete);
    ASSERT_TRUE(curve[1].complete);
    // Allow sampling noise at the low end; demand clear growth overall.
    EXPECT_LT(curve[0].avgLatency, curve[1].avgLatency * 1.05);
    if (curve[2].complete) {
        EXPECT_GT(curve[2].avgLatency, curve[0].avgLatency);
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, LatencyMonotonic,
                         ::testing::Values("vc8", "vc16", "fr6", "fr13"));

TEST(PaperOrdering, FrBaseLatencyBeatsVcWithFastControl)
{
    // The headline Section 4 claim, on the full 8x8 mesh at low load.
    Config vc = baseConfig();
    applyVc8(vc);
    Config fr = baseConfig();
    applyFr6(fr);
    const RunResult rv = measureBaseLatency(vc, fast());
    const RunResult rf = measureBaseLatency(fr, fast());
    ASSERT_TRUE(rv.complete);
    ASSERT_TRUE(rf.complete);
    EXPECT_LT(rf.avgLatency, rv.avgLatency);
    // Roughly one cycle per hop: at least 8% and at most 30% lower.
    EXPECT_LT(rf.avgLatency, rv.avgLatency * 0.92);
    EXPECT_GT(rf.avgLatency, rv.avgLatency * 0.70);
}

TEST(PaperOrdering, Fr6AcceptsMoreTrafficThanVc8PastVcSaturation)
{
    // At 75% capacity — past VC8's ~63-65% saturation but inside
    // FR6's — FR6 sustains markedly higher accepted throughput.
    RunOptions opt = fast();
    opt.samplePackets = 1500;
    opt.maxCycles = 60000;
    Config vc = baseConfig();
    applyVc8(vc);
    Config fr = baseConfig();
    applyFr6(fr);
    const RunResult rv = measureAtLoad(vc, 0.75, opt);
    const RunResult rf = measureAtLoad(fr, 0.75, opt);
    EXPECT_GT(rf.acceptedFraction, rv.acceptedFraction + 0.05);
    // And VC8 is visibly saturated: it cannot accept what is offered.
    EXPECT_LT(rv.acceptedFraction, 0.72);
}

TEST(PaperOrdering, MoreBuffersNeverHurtVc)
{
    RunOptions opt = fast();
    Config vc8 = baseConfig();
    applyVc8(vc8);
    vc8.set("workload.offered", 0.55);
    Config vc16 = baseConfig();
    applyVc16(vc16);
    vc16.set("workload.offered", 0.55);
    const RunResult r8 = runExperiment(vc8, opt);
    const RunResult r16 = runExperiment(vc16, opt);
    ASSERT_TRUE(r8.complete);
    ASSERT_TRUE(r16.complete);
    EXPECT_LE(r16.avgLatency, r8.avgLatency * 1.10);
}

TEST(PaperOrdering, LeadTimeBarelyChangesThroughput)
{
    // Section 4.4: saturation throughput is independent of lead time.
    RunOptions opt = fast();
    opt.maxCycles = 30000;
    double sat[2];
    int idx = 0;
    for (int lead : {1, 4}) {
        Config cfg = baseConfig();
        cfg.set("size_x", 4);
        cfg.set("size_y", 4);
        applyFr6(cfg);
        applyLeadingControl(cfg, lead);
        SaturationOptions sopt;
        sopt.tolerance = 0.04;
        sat[idx++] = findSaturation(cfg, opt, sopt);
    }
    EXPECT_NEAR(sat[0], sat[1], 0.10);
}

TEST(Sweep, StandardLoadsAreSortedAndInRange)
{
    const auto loads = standardLoads();
    ASSERT_FALSE(loads.empty());
    for (std::size_t i = 1; i < loads.size(); ++i)
        EXPECT_LT(loads[i - 1], loads[i]);
    EXPECT_GE(loads.front(), 0.05);
    EXPECT_LE(loads.back(), 1.0);
}

TEST(Sweep, FindSaturationBracketsVc8)
{
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    applyVc8(cfg);
    RunOptions opt = fast();
    opt.maxCycles = 30000;
    SaturationOptions sopt;
    sopt.tolerance = 0.04;
    const double sat = findSaturation(cfg, opt, sopt);
    EXPECT_GT(sat, 0.35);
    EXPECT_LT(sat, 1.0);
}

}  // namespace
}  // namespace frfc
