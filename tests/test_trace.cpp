/**
 * @file
 * Trace-driven traffic: parsing, replay semantics, and exact workload
 * replay across both flow-control schemes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unistd.h>

#include "common/config.hpp"
#include "harness/presets.hpp"
#include "network/network.hpp"
#include "network/runner.hpp"
#include "proto/packet_registry.hpp"
#include "traffic/generator.hpp"

namespace frfc {
namespace {

WorkloadContext
at(Cycle now, NodeId node, Rng& rng)
{
    return WorkloadContext{now, node, &rng};
}

std::string
writeTempTrace(const std::string& body)
{
    // Per-process name: ctest runs these cases concurrently, and a
    // shared path lets one test overwrite another's trace mid-parse.
    const std::string path = ::testing::TempDir() + "frfc_trace_test_"
        + std::to_string(::getpid()) + ".tr";
    std::ofstream out(path);
    out << body;
    return path;
}

TEST(TraceParse, ReadsEntriesSkippingComments)
{
    const std::string path = writeTempTrace(
        "# a workload\n"
        "0 1 2 5\n"
        "\n"
        "3 0 7 2   # inline comment\n");
    const auto entries = parseTraceFile(path, 16);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].cycle, 0);
    EXPECT_EQ(entries[0].src, 1);
    EXPECT_EQ(entries[0].dest, 2);
    EXPECT_EQ(entries[0].length, 5);
    EXPECT_EQ(entries[1].cycle, 3);
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsOutOfRangeNodes)
{
    const std::string path = writeTempTrace("0 1 99 5\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "out of range");
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsUnsortedCycles)
{
    const std::string path = writeTempTrace("5 1 2 5\n3 1 2 5\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "non-decreasing");
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsSelfTraffic)
{
    const std::string path = writeTempTrace("0 3 3 5\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "self-traffic");
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsNonPositiveLength)
{
    const std::string path = writeTempTrace("0 1 2 0\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "length must be positive");
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsMissingFile)
{
    EXPECT_EXIT(parseTraceFile("/nonexistent/frfc.tr", 16),
                ::testing::ExitedWithCode(1), "cannot open trace file");
}

TEST(TraceParseDeath, RejectsMalformedLine)
{
    const std::string path = writeTempTrace("0 1 2\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "expected 'cycle src dest length'");
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsDuplicateTag)
{
    const std::string path = writeTempTrace("0 1 2 5 7\n1 2 3 5 7\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "duplicate tag");
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsUnknownReplyTag)
{
    const std::string path = writeTempTrace("0 1 2 5 7\n1 2 1 5 8 9\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "references no earlier tag");
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsSelfReferencingReply)
{
    // A tag is registered only after reply_to resolution, so an entry
    // answering its own tag is an unknown-tag error.
    const std::string path = writeTempTrace("0 1 2 5 7 7\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "references no earlier tag");
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsReplyFromWrongNode)
{
    // The request goes 1 -> 2, so its reply must originate at node 2.
    const std::string path = writeTempTrace("0 1 2 5 7\n4 3 1 5 -1 7\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "must originate at its parent's destination");
    std::remove(path.c_str());
}

TEST(TraceParse, ResolvesReplyDependencies)
{
    const std::string path = writeTempTrace(
        "0 1 2 5 7\n"
        "4 2 1 3 -1 7\n"
        "9 0 3 1\n");
    const auto entries = parseTraceFile(path, 16);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].tag, 7);
    EXPECT_EQ(entries[0].parent, kInvalidPacket);
    EXPECT_EQ(entries[0].cls, MessageClass::kRequest);
    // Node 1's first packet gets id makePacketId(1, 0).
    EXPECT_EQ(entries[1].replyTo, 7);
    EXPECT_EQ(entries[1].parent, makePacketId(1, 0));
    EXPECT_EQ(entries[1].cls, MessageClass::kReply);
    EXPECT_EQ(entries[2].parent, kInvalidPacket);
    std::remove(path.c_str());
}

TEST(TraceFormat, RoundTrips)
{
    std::vector<TraceEntry> entries{{0, 1, 2, 5}, {7, 3, 0, 2}};
    const std::string path = writeTempTrace(formatTrace(entries));
    const auto parsed = parseTraceFile(path, 8);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[1].cycle, 7);
    EXPECT_EQ(parsed[1].length, 2);
    std::remove(path.c_str());
}

TEST(TraceFormat, RoundTripsTagsAndReplies)
{
    std::vector<TraceEntry> entries;
    TraceEntry request{0, 1, 2, 5};
    request.tag = 3;
    entries.push_back(request);
    TraceEntry reply{6, 2, 1, 2};
    reply.replyTo = 3;
    entries.push_back(reply);
    const std::string body = formatTrace(entries);
    EXPECT_NE(body.find("tag"), std::string::npos);

    const std::string path = writeTempTrace(body);
    const auto parsed = parseTraceFile(path, 8);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].tag, 3);
    EXPECT_EQ(parsed[0].replyTo, -1);
    EXPECT_EQ(parsed[1].tag, -1);
    EXPECT_EQ(parsed[1].replyTo, 3);
    EXPECT_EQ(parsed[1].parent, makePacketId(1, 0));
    EXPECT_EQ(parsed[1].cls, MessageClass::kReply);
    std::remove(path.c_str());
}

TEST(TraceGeneratorDeath, RejectsForeignNodeContext)
{
    // Regression: generate() used to ignore which node it was asked
    // for, silently replaying node 0's entries for any caller.
    auto entries = std::make_shared<std::vector<TraceEntry>>(
        std::vector<TraceEntry>{{2, 0, 3, 5}});
    TraceGenerator gen(entries, 0);
    Rng rng(1);
    EXPECT_DEATH(gen.generate(at(0, 1, rng)),
                 "asked to generate for node");
}

TEST(TraceGeneratorTest, ReplyStallsUntilParentEjects)
{
    const std::string path = writeTempTrace(
        "0 0 3 2 11\n"
        "5 3 0 4 -1 11\n"
        "6 3 2 1\n");
    auto entries = std::make_shared<std::vector<TraceEntry>>(
        parseTraceFile(path, 16));
    std::remove(path.c_str());

    TraceGenerator gen(entries, 3);
    EXPECT_TRUE(gen.closedLoop());
    Rng rng(1);
    // Past the recorded cycle, but the parent has not ejected: the
    // reply — and the independent entry queued behind it — stall.
    for (Cycle c = 0; c <= 8; ++c)
        EXPECT_FALSE(gen.generate(at(c, 3, rng)).has_value());

    PacketCompletion done;
    done.packet = makePacketId(0, 0);
    done.src = 0;
    done.dest = 3;
    done.length = 2;
    done.cls = MessageClass::kRequest;
    done.completed = 9;
    EXPECT_FALSE(
        gen.onPacketEjected(done, at(9, 3, rng)).has_value());

    const auto reply = gen.generate(at(9, 3, rng));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->dest, 0);
    EXPECT_EQ(reply->length, 4);
    EXPECT_EQ(reply->cls, MessageClass::kReply);
    const auto next = gen.generate(at(10, 3, rng));
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->dest, 2);
    EXPECT_EQ(next->cls, MessageClass::kRequest);
}

TEST(TraceGeneratorTest, EmitsAtRecordedCycles)
{
    auto entries = std::make_shared<std::vector<TraceEntry>>(
        std::vector<TraceEntry>{{2, 0, 3, 5}, {2, 1, 3, 2}, {4, 0, 5, 1}});
    TraceGenerator gen0(entries, 0);
    Rng rng(1);
    EXPECT_FALSE(gen0.generate(at(0, 0, rng)).has_value());
    EXPECT_FALSE(gen0.generate(at(1, 0, rng)).has_value());
    const auto first = gen0.generate(at(2, 0, rng));
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->dest, 3);
    EXPECT_EQ(first->length, 5);
    EXPECT_FALSE(gen0.generate(at(3, 0, rng)).has_value());
    const auto second = gen0.generate(at(4, 0, rng));
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->dest, 5);
    EXPECT_EQ(second->length, 1);
    EXPECT_FALSE(gen0.generate(at(5, 0, rng)).has_value());

    // Node 1 sees only its own entry.
    TraceGenerator gen1(entries, 1);
    EXPECT_FALSE(gen1.generate(at(1, 1, rng)).has_value());
    const auto other = gen1.generate(at(2, 1, rng));
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(other->length, 2);
}

TEST(TraceGeneratorTest, SameCyclePacketsSlipByOneCycle)
{
    auto entries = std::make_shared<std::vector<TraceEntry>>(
        std::vector<TraceEntry>{{1, 0, 3, 1}, {1, 0, 4, 1}});
    TraceGenerator gen(entries, 0);
    Rng rng(1);
    const auto a = gen.generate(at(1, 0, rng));
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->dest, 3);
    const auto b = gen.generate(at(2, 0, rng));
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->dest, 4);
}

/** Both schemes deliver the identical recorded workload, losslessly. */
class TraceReplay : public ::testing::TestWithParam<const char*>
{
};

TEST_P(TraceReplay, DeliversRecordedWorkload)
{
    // A mixed-length workload on a 4x4 mesh.
    std::vector<TraceEntry> entries;
    Rng rng(99);
    Cycle cycle = 0;
    for (int i = 0; i < 120; ++i) {
        cycle += rng.nextBounded(20);
        const auto src = static_cast<NodeId>(rng.nextBounded(16));
        auto dest = static_cast<NodeId>(rng.nextBounded(15));
        if (dest >= src)
            ++dest;
        const int length = 1 + static_cast<int>(rng.nextBounded(8));
        entries.push_back(TraceEntry{cycle, src, dest, length});
    }
    const std::string path = writeTempTrace(formatTrace(entries));

    Config cfg = baseConfig();
    applyPreset(cfg, GetParam());
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("data_buffers", 13);  // wide-length packets need headroom
    cfg.set("trace", path);

    auto net = makeNetwork(cfg);
    PacketRegistry& reg = net->registry();
    net->kernel().runUntil(
        [&reg, &entries] {
            return reg.packetsCreated()
                == static_cast<std::int64_t>(entries.size())
                && reg.packetsInFlight() == 0;
        },
        30000);
    EXPECT_EQ(reg.packetsCreated(),
              static_cast<std::int64_t>(entries.size()));
    EXPECT_EQ(reg.packetsDelivered(),
              static_cast<std::int64_t>(entries.size()));
    std::int64_t flits = 0;
    for (const auto& e : entries)
        flits += e.length;
    EXPECT_EQ(reg.flitsDelivered(), flits);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Schemes, TraceReplay,
                         ::testing::Values("vc8", "fr6"));

}  // namespace
}  // namespace frfc
