/**
 * @file
 * Trace-driven traffic: parsing, replay semantics, and exact workload
 * replay across both flow-control schemes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unistd.h>

#include "common/config.hpp"
#include "harness/presets.hpp"
#include "network/network.hpp"
#include "network/runner.hpp"
#include "traffic/generator.hpp"

namespace frfc {
namespace {

std::string
writeTempTrace(const std::string& body)
{
    // Per-process name: ctest runs these cases concurrently, and a
    // shared path lets one test overwrite another's trace mid-parse.
    const std::string path = ::testing::TempDir() + "frfc_trace_test_"
        + std::to_string(::getpid()) + ".tr";
    std::ofstream out(path);
    out << body;
    return path;
}

TEST(TraceParse, ReadsEntriesSkippingComments)
{
    const std::string path = writeTempTrace(
        "# a workload\n"
        "0 1 2 5\n"
        "\n"
        "3 0 7 2   # inline comment\n");
    const auto entries = parseTraceFile(path, 16);
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].cycle, 0);
    EXPECT_EQ(entries[0].src, 1);
    EXPECT_EQ(entries[0].dest, 2);
    EXPECT_EQ(entries[0].length, 5);
    EXPECT_EQ(entries[1].cycle, 3);
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsOutOfRangeNodes)
{
    const std::string path = writeTempTrace("0 1 99 5\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "out of range");
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsUnsortedCycles)
{
    const std::string path = writeTempTrace("5 1 2 5\n3 1 2 5\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "non-decreasing");
    std::remove(path.c_str());
}

TEST(TraceParseDeath, RejectsSelfTraffic)
{
    const std::string path = writeTempTrace("0 3 3 5\n");
    EXPECT_EXIT(parseTraceFile(path, 16), ::testing::ExitedWithCode(1),
                "self-traffic");
    std::remove(path.c_str());
}

TEST(TraceFormat, RoundTrips)
{
    std::vector<TraceEntry> entries{{0, 1, 2, 5}, {7, 3, 0, 2}};
    const std::string path = writeTempTrace(formatTrace(entries));
    const auto parsed = parseTraceFile(path, 8);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[1].cycle, 7);
    EXPECT_EQ(parsed[1].length, 2);
    std::remove(path.c_str());
}

TEST(TraceGeneratorTest, EmitsAtRecordedCycles)
{
    auto entries = std::make_shared<std::vector<TraceEntry>>(
        std::vector<TraceEntry>{{2, 0, 3, 5}, {2, 1, 3, 2}, {4, 0, 5, 1}});
    TraceGenerator gen0(entries, 0);
    Rng rng(1);
    EXPECT_FALSE(gen0.generate(0, 0, rng).has_value());
    EXPECT_FALSE(gen0.generate(1, 0, rng).has_value());
    const auto first = gen0.generate(2, 0, rng);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->dest, 3);
    EXPECT_EQ(first->length, 5);
    EXPECT_FALSE(gen0.generate(3, 0, rng).has_value());
    const auto second = gen0.generate(4, 0, rng);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->dest, 5);
    EXPECT_EQ(second->length, 1);
    EXPECT_FALSE(gen0.generate(5, 0, rng).has_value());

    // Node 1 sees only its own entry.
    TraceGenerator gen1(entries, 1);
    EXPECT_FALSE(gen1.generate(1, 1, rng).has_value());
    const auto other = gen1.generate(2, 1, rng);
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(other->length, 2);
}

TEST(TraceGeneratorTest, SameCyclePacketsSlipByOneCycle)
{
    auto entries = std::make_shared<std::vector<TraceEntry>>(
        std::vector<TraceEntry>{{1, 0, 3, 1}, {1, 0, 4, 1}});
    TraceGenerator gen(entries, 0);
    Rng rng(1);
    const auto a = gen.generate(1, 0, rng);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->dest, 3);
    const auto b = gen.generate(2, 0, rng);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->dest, 4);
}

/** Both schemes deliver the identical recorded workload, losslessly. */
class TraceReplay : public ::testing::TestWithParam<const char*>
{
};

TEST_P(TraceReplay, DeliversRecordedWorkload)
{
    // A mixed-length workload on a 4x4 mesh.
    std::vector<TraceEntry> entries;
    Rng rng(99);
    Cycle cycle = 0;
    for (int i = 0; i < 120; ++i) {
        cycle += rng.nextBounded(20);
        const auto src = static_cast<NodeId>(rng.nextBounded(16));
        auto dest = static_cast<NodeId>(rng.nextBounded(15));
        if (dest >= src)
            ++dest;
        const int length = 1 + static_cast<int>(rng.nextBounded(8));
        entries.push_back(TraceEntry{cycle, src, dest, length});
    }
    const std::string path = writeTempTrace(formatTrace(entries));

    Config cfg = baseConfig();
    applyPreset(cfg, GetParam());
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("data_buffers", 13);  // wide-length packets need headroom
    cfg.set("trace", path);

    auto net = makeNetwork(cfg);
    PacketRegistry& reg = net->registry();
    net->kernel().runUntil(
        [&reg, &entries] {
            return reg.packetsCreated()
                == static_cast<std::int64_t>(entries.size())
                && reg.packetsInFlight() == 0;
        },
        30000);
    EXPECT_EQ(reg.packetsCreated(),
              static_cast<std::int64_t>(entries.size()));
    EXPECT_EQ(reg.packetsDelivered(),
              static_cast<std::int64_t>(entries.size()));
    std::int64_t flits = 0;
    for (const auto& e : entries)
        flits += e.length;
    EXPECT_EQ(reg.flitsDelivered(), flits);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Schemes, TraceReplay,
                         ::testing::Values("vc8", "fr6"));

}  // namespace
}  // namespace frfc
