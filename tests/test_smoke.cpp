/**
 * @file
 * End-to-end smoke tests: both flow-control schemes deliver all sample
 * packets, intact, on a small mesh at light load.
 */

#include <gtest/gtest.h>

#include "harness/presets.hpp"
#include "network/network.hpp"
#include "network/runner.hpp"

namespace frfc {
namespace {

RunOptions
smokeOptions()
{
    RunOptions opt;
    opt.samplePackets = 300;
    opt.minWarmup = 500;
    opt.maxWarmup = 2000;
    opt.maxCycles = 50000;
    return opt;
}

TEST(Smoke, VcNetworkDeliversAtLightLoad)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.2);
    const RunResult r = runExperiment(cfg, smokeOptions());
    EXPECT_TRUE(r.complete);
    EXPECT_GT(r.avgLatency, 10.0);
    EXPECT_LT(r.avgLatency, 120.0);
}

TEST(Smoke, FrNetworkDeliversAtLightLoad)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.2);
    const RunResult r = runExperiment(cfg, smokeOptions());
    EXPECT_TRUE(r.complete);
    EXPECT_GT(r.avgLatency, 10.0);
    EXPECT_LT(r.avgLatency, 120.0);
}

TEST(Smoke, FrLeadingControlDelivers)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    applyLeadingControl(cfg, 1);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.2);
    const RunResult r = runExperiment(cfg, smokeOptions());
    EXPECT_TRUE(r.complete);
}

}  // namespace
}  // namespace frfc
