/**
 * @file
 * Unit tests for the output reservation table, including the worked
 * scheduling example of paper Figure 4.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "frfc/output_table.hpp"

namespace frfc {
namespace {

constexpr auto kAny = [](Cycle) { return true; };

TEST(OutputTable, StartsIdleAndFull)
{
    OutputReservationTable ort(32, 6, 4);
    for (Cycle t = 0; t < 32; ++t) {
        EXPECT_FALSE(ort.busyAt(t));
        EXPECT_EQ(ort.freeBuffersAt(t), 6);
    }
}

TEST(OutputTable, FindsEarliestFreeCycle)
{
    OutputReservationTable ort(32, 6, 4);
    EXPECT_EQ(ort.findDeparture(1, kAny), 1);
    ort.reserve(1);
    EXPECT_EQ(ort.findDeparture(1, kAny), 2);
}

TEST(OutputTable, ReserveMarksBusyAndDecrements)
{
    OutputReservationTable ort(32, 6, 4);
    ort.reserve(5);
    EXPECT_TRUE(ort.busyAt(5));
    EXPECT_EQ(ort.freeBuffersAt(8), 6);   // before arrival downstream
    EXPECT_EQ(ort.freeBuffersAt(9), 5);   // from t_d + t_p onward
    EXPECT_EQ(ort.freeBuffersAt(31), 5);
}

TEST(OutputTable, CreditRestoresFromTimestamp)
{
    OutputReservationTable ort(32, 6, 4);
    ort.reserve(5);               // buffers -1 from cycle 9
    ort.credit(12);               // downstream departs at 12
    EXPECT_EQ(ort.freeBuffersAt(9), 5);
    EXPECT_EQ(ort.freeBuffersAt(11), 5);
    EXPECT_EQ(ort.freeBuffersAt(12), 6);  // zero turnaround
}

TEST(OutputTable, ExhaustedBuffersBlockScheduling)
{
    OutputReservationTable ort(16, 1, 2);
    const Cycle d1 = ort.findDeparture(1, kAny);
    ort.reserve(d1);
    // One buffer downstream, held indefinitely: no further departure.
    EXPECT_EQ(ort.findDeparture(1, kAny), kInvalidCycle);
    // A credit at cycle 8 frees it from then on.
    ort.credit(8);
    const Cycle d2 = ort.findDeparture(1, kAny);
    // The next flit may depart once its arrival (t_d + 2) sees the free
    // buffer: t_d >= 6.
    EXPECT_EQ(d2, 6);
}

TEST(OutputTable, RespectsSuffixAvailability)
{
    // A buffer that is free now but taken later in the window must not
    // admit a flit whose residency could overlap the shortage.
    OutputReservationTable ort(16, 2, 1);
    ort.reserve(3);  // buffers -1 from cycle 4
    ort.reserve(4);  // buffers -1 from cycle 5 => 0 free from 5 on
    EXPECT_EQ(ort.freeBuffersAt(4), 1);
    EXPECT_EQ(ort.freeBuffersAt(5), 0);
    // Even a departure at 1 (arrival 2, when a buffer is free) must be
    // rejected: from cycle 5 there would be -1 buffers.
    EXPECT_EQ(ort.findDeparture(1, kAny), kInvalidCycle);
}

TEST(OutputTable, ExtraPredicateFilters)
{
    OutputReservationTable ort(32, 6, 4);
    const Cycle d =
        ort.findDeparture(1, [](Cycle t) { return t % 2 == 0; });
    EXPECT_EQ(d, 2);
}

TEST(OutputTable, DepartureMustFitLinkLatencyInWindow)
{
    OutputReservationTable ort(8, 6, 4);
    // Window [0,7]; arrival must land inside, so t_d <= 3.
    EXPECT_EQ(ort.findDeparture(3, kAny), 3);
    EXPECT_EQ(ort.findDeparture(4, kAny), kInvalidCycle);
}

TEST(OutputTable, AdvanceSlidesWindowAndCarriesCounts)
{
    OutputReservationTable ort(16, 4, 2);
    ort.reserve(5);  // -1 from cycle 7 to the horizon
    ort.advance(10);
    EXPECT_EQ(ort.windowStart(), 10);
    EXPECT_EQ(ort.windowEnd(), 25);
    // The decrement persists into newly exposed slots.
    for (Cycle t = 10; t <= 25; ++t)
        EXPECT_EQ(ort.freeBuffersAt(t), 3) << t;
    // Busy bit expired with its cycle.
    EXPECT_FALSE(ort.busyAt(10));
}

TEST(OutputTable, CreditAfterSlideStillApplies)
{
    OutputReservationTable ort(16, 4, 2);
    ort.reserve(5);
    ort.advance(10);
    ort.credit(12);
    EXPECT_EQ(ort.freeBuffersAt(11), 3);
    EXPECT_EQ(ort.freeBuffersAt(12), 4);
}

TEST(OutputTable, LateCreditClampsToWindow)
{
    OutputReservationTable ort(16, 4, 2);
    ort.reserve(5);
    ort.advance(10);
    ort.credit(8);  // "free from 8", already in the past
    EXPECT_EQ(ort.freeBuffersAt(10), 4);
}

TEST(OutputTable, InfiniteModeIgnoresBuffers)
{
    OutputReservationTable ort(16, 0, 1, /*infinite=*/true);
    for (int i = 0; i < 10; ++i) {
        const Cycle d = ort.findDeparture(1, kAny);
        ASSERT_NE(d, kInvalidCycle);
        ort.reserve(d);
    }
    // Only channel bandwidth constrains: cycles 1..10 now busy.
    EXPECT_EQ(ort.findDeparture(1, kAny), 11);
}

/**
 * The worked example of paper Figure 4: a data flit arrives from the
 * West at cycle 9 and leaves East. Cycle 10 is busy; at cycle 11 there
 * is no free buffer on the next node; the flit is scheduled to leave at
 * cycle 12, the channel is marked busy and the downstream buffer count
 * decremented from then on.
 *
 * (The paper's figure displays the buffer state at t_d as the state at
 * t_d + t_p — see its footnote 5; we model the propagation delay
 * explicitly, so the example is reproduced with t_p = 1 and the
 * buffer-availability row shifted accordingly.)
 */
TEST(OutputTable, PaperFigure4Example)
{
    OutputReservationTable ort(32, 2, /*link latency=*/1);

    // Prior traffic: the channel is busy during cycle 10, and both of
    // the next node's buffers are occupied until a credit frees one
    // from cycle 13 onward.
    ort.reserve(3);   // takes one downstream buffer from cycle 4
    ort.reserve(10);  // channel busy at 10; second buffer from cycle 11
    ort.credit(13);   // the first buffer frees at cycle 13

    // Departure 11 would land downstream at 12, when no buffer is free.
    EXPECT_EQ(ort.freeBuffersAt(12), 0);
    EXPECT_EQ(ort.freeBuffersAt(13), 1);

    // The flit arriving at cycle 9: cycle 10 is busy, cycle 11 fails
    // the buffer check, so the earliest departure is cycle 12 — exactly
    // the figure's outcome.
    const Cycle depart =
        ort.findDeparture(10, [](Cycle) { return true; });
    EXPECT_EQ(depart, 12);

    ort.reserve(depart);
    EXPECT_TRUE(ort.busyAt(12));
    EXPECT_EQ(ort.freeBuffersAt(13), 0);  // decremented from t_d + t_p
}

/**
 * Naive reference for findDeparture, built only on the public
 * inspection accessors: for each candidate departure, re-check the
 * buffer suffix cycle by cycle. The production implementation answers
 * from the incrementally maintained suffix-minimum frontier; this scan
 * is the specification it must match.
 */
template <typename Predicate>
Cycle
referenceFindDeparture(const OutputReservationTable& ort,
                       Cycle min_depart, Predicate&& extra, int min_free)
{
    const Cycle lo = std::max(min_depart, ort.windowStart());
    const Cycle hi = ort.windowEnd() - ort.linkLatency();
    for (Cycle t = lo; t <= hi; ++t) {
        if (ort.busyAt(t))
            continue;
        bool feasible = true;
        for (Cycle a = t + ort.linkLatency(); a <= ort.windowEnd(); ++a) {
            if (ort.freeBuffersAt(a) < min_free) {
                feasible = false;
                break;
            }
        }
        if (!feasible)
            continue;
        if (!extra(t))
            continue;
        return t;
    }
    return kInvalidCycle;
}

/**
 * Property test for the cached-frontier fast path: drive randomized
 * reserve/credit/advance sequences (valid by construction — every
 * credit pairs with an outstanding reservation at or after its
 * downstream arrival, so the table's own overflow assertions stay
 * live) and require findDeparture to agree with the reference scan
 * for random (min_depart, min_free) queries after every mutation.
 */
TEST(OutputTableProperty, FastPathMatchesReferenceScan)
{
    struct Shape
    {
        int horizon;
        int buffers;
        Cycle latency;
    };
    for (const Shape& shape : {Shape{8, 2, 1}, Shape{16, 3, 2},
                               Shape{32, 6, 4}, Shape{64, 4, 3}}) {
        Rng rng(20260806,
                static_cast<std::uint64_t>(shape.horizon));
        OutputReservationTable ort(shape.horizon, shape.buffers,
                                   shape.latency);
        Cycle now = 0;
        std::vector<Cycle> outstanding;  // arrival cycles awaiting credit
        for (int step = 0; step < 600; ++step) {
            const std::uint64_t op = rng.nextBounded(4);
            if (op == 0) {
                // Slide the window forward a little.
                now += rng.nextRange(0, 2);
                ort.advance(now);
                // Credits can no longer land before the window.
                for (Cycle& a : outstanding)
                    a = std::max(a, ort.windowStart());
            } else if (op <= 2) {
                // Reserve wherever the scheduler itself would.
                const Cycle min_depart =
                    now + rng.nextRange(0, shape.horizon / 2);
                const Cycle d = ort.findDeparture(min_depart, kAny);
                if (d != kInvalidCycle) {
                    ort.reserve(d);
                    outstanding.push_back(d + shape.latency);
                }
            } else if (!outstanding.empty()) {
                // Credit a random outstanding reservation at or after
                // its downstream arrival.
                const std::uint64_t pick =
                    rng.nextBounded(outstanding.size());
                const Cycle arrival = outstanding[pick];
                const Cycle from = std::min(
                    arrival + rng.nextRange(0, 4), ort.windowEnd());
                ort.credit(from);
                outstanding[pick] = outstanding.back();
                outstanding.pop_back();
            }
            // Cross-check several queries against the reference.
            for (int q = 0; q < 3; ++q) {
                const Cycle min_depart =
                    now + rng.nextRange(0, shape.horizon);
                const int min_free =
                    static_cast<int>(rng.nextRange(1, 2));
                const bool odd_only = rng.nextBool(0.3);
                auto extra = [odd_only](Cycle t) {
                    return !odd_only || t % 2 != 0;
                };
                ASSERT_EQ(ort.findDeparture(min_depart, extra, min_free),
                          referenceFindDeparture(ort, min_depart, extra,
                                                 min_free))
                    << "horizon " << shape.horizon << " step " << step
                    << " min_depart " << min_depart << " min_free "
                    << min_free;
            }
        }
    }
}

TEST(OutputTableDeath, DoubleReserveSameCyclePanics)
{
    OutputReservationTable ort(16, 4, 2);
    ort.reserve(5);
    EXPECT_DEATH(ort.reserve(5), "double reservation");
}

TEST(OutputTableDeath, CreditOverflowPanics)
{
    OutputReservationTable ort(16, 4, 2);
    EXPECT_DEATH(ort.credit(3), "credit overflow");
}

TEST(OutputTableDeath, WindowNeverMovesBackwards)
{
    OutputReservationTable ort(16, 4, 2);
    ort.advance(10);
    EXPECT_DEATH(ort.advance(5), "backwards");
}

}  // namespace
}  // namespace frfc
