/**
 * @file
 * Unit tests for the output reservation table, including the worked
 * scheduling example of paper Figure 4.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "frfc/output_table.hpp"

namespace frfc {
namespace {

constexpr auto kAny = [](Cycle) { return true; };

TEST(OutputTable, StartsIdleAndFull)
{
    OutputReservationTable ort(32, 6, 4);
    for (Cycle t = 0; t < 32; ++t) {
        EXPECT_FALSE(ort.busyAt(t));
        EXPECT_EQ(ort.freeBuffersAt(t), 6);
    }
}

TEST(OutputTable, FindsEarliestFreeCycle)
{
    OutputReservationTable ort(32, 6, 4);
    EXPECT_EQ(ort.findDeparture(1, kAny), 1);
    ort.reserve(1);
    EXPECT_EQ(ort.findDeparture(1, kAny), 2);
}

TEST(OutputTable, ReserveMarksBusyAndDecrements)
{
    OutputReservationTable ort(32, 6, 4);
    ort.reserve(5);
    EXPECT_TRUE(ort.busyAt(5));
    EXPECT_EQ(ort.freeBuffersAt(8), 6);   // before arrival downstream
    EXPECT_EQ(ort.freeBuffersAt(9), 5);   // from t_d + t_p onward
    EXPECT_EQ(ort.freeBuffersAt(31), 5);
}

TEST(OutputTable, CreditRestoresFromTimestamp)
{
    OutputReservationTable ort(32, 6, 4);
    ort.reserve(5);               // buffers -1 from cycle 9
    ort.credit(12);               // downstream departs at 12
    EXPECT_EQ(ort.freeBuffersAt(9), 5);
    EXPECT_EQ(ort.freeBuffersAt(11), 5);
    EXPECT_EQ(ort.freeBuffersAt(12), 6);  // zero turnaround
}

TEST(OutputTable, ExhaustedBuffersBlockScheduling)
{
    OutputReservationTable ort(16, 1, 2);
    const Cycle d1 = ort.findDeparture(1, kAny);
    ort.reserve(d1);
    // One buffer downstream, held indefinitely: no further departure.
    EXPECT_EQ(ort.findDeparture(1, kAny), kInvalidCycle);
    // A credit at cycle 8 frees it from then on.
    ort.credit(8);
    const Cycle d2 = ort.findDeparture(1, kAny);
    // The next flit may depart once its arrival (t_d + 2) sees the free
    // buffer: t_d >= 6.
    EXPECT_EQ(d2, 6);
}

TEST(OutputTable, RespectsSuffixAvailability)
{
    // A buffer that is free now but taken later in the window must not
    // admit a flit whose residency could overlap the shortage.
    OutputReservationTable ort(16, 2, 1);
    ort.reserve(3);  // buffers -1 from cycle 4
    ort.reserve(4);  // buffers -1 from cycle 5 => 0 free from 5 on
    EXPECT_EQ(ort.freeBuffersAt(4), 1);
    EXPECT_EQ(ort.freeBuffersAt(5), 0);
    // Even a departure at 1 (arrival 2, when a buffer is free) must be
    // rejected: from cycle 5 there would be -1 buffers.
    EXPECT_EQ(ort.findDeparture(1, kAny), kInvalidCycle);
}

TEST(OutputTable, ExtraPredicateFilters)
{
    OutputReservationTable ort(32, 6, 4);
    const Cycle d =
        ort.findDeparture(1, [](Cycle t) { return t % 2 == 0; });
    EXPECT_EQ(d, 2);
}

TEST(OutputTable, DepartureMustFitLinkLatencyInWindow)
{
    OutputReservationTable ort(8, 6, 4);
    // Window [0,7]; arrival must land inside, so t_d <= 3.
    EXPECT_EQ(ort.findDeparture(3, kAny), 3);
    EXPECT_EQ(ort.findDeparture(4, kAny), kInvalidCycle);
}

TEST(OutputTable, AdvanceSlidesWindowAndCarriesCounts)
{
    OutputReservationTable ort(16, 4, 2);
    ort.reserve(5);  // -1 from cycle 7 to the horizon
    ort.advance(10);
    EXPECT_EQ(ort.windowStart(), 10);
    EXPECT_EQ(ort.windowEnd(), 25);
    // The decrement persists into newly exposed slots.
    for (Cycle t = 10; t <= 25; ++t)
        EXPECT_EQ(ort.freeBuffersAt(t), 3) << t;
    // Busy bit expired with its cycle.
    EXPECT_FALSE(ort.busyAt(10));
}

TEST(OutputTable, CreditAfterSlideStillApplies)
{
    OutputReservationTable ort(16, 4, 2);
    ort.reserve(5);
    ort.advance(10);
    ort.credit(12);
    EXPECT_EQ(ort.freeBuffersAt(11), 3);
    EXPECT_EQ(ort.freeBuffersAt(12), 4);
}

TEST(OutputTable, LateCreditClampsToWindow)
{
    OutputReservationTable ort(16, 4, 2);
    ort.reserve(5);
    ort.advance(10);
    ort.credit(8);  // "free from 8", already in the past
    EXPECT_EQ(ort.freeBuffersAt(10), 4);
}

TEST(OutputTable, InfiniteModeIgnoresBuffers)
{
    OutputReservationTable ort(16, 0, 1, /*infinite=*/true);
    for (int i = 0; i < 10; ++i) {
        const Cycle d = ort.findDeparture(1, kAny);
        ASSERT_NE(d, kInvalidCycle);
        ort.reserve(d);
    }
    // Only channel bandwidth constrains: cycles 1..10 now busy.
    EXPECT_EQ(ort.findDeparture(1, kAny), 11);
}

/**
 * The worked example of paper Figure 4: a data flit arrives from the
 * West at cycle 9 and leaves East. Cycle 10 is busy; at cycle 11 there
 * is no free buffer on the next node; the flit is scheduled to leave at
 * cycle 12, the channel is marked busy and the downstream buffer count
 * decremented from then on.
 *
 * (The paper's figure displays the buffer state at t_d as the state at
 * t_d + t_p — see its footnote 5; we model the propagation delay
 * explicitly, so the example is reproduced with t_p = 1 and the
 * buffer-availability row shifted accordingly.)
 */
TEST(OutputTable, PaperFigure4Example)
{
    OutputReservationTable ort(32, 2, /*link latency=*/1);

    // Prior traffic: the channel is busy during cycle 10, and both of
    // the next node's buffers are occupied until a credit frees one
    // from cycle 13 onward.
    ort.reserve(3);   // takes one downstream buffer from cycle 4
    ort.reserve(10);  // channel busy at 10; second buffer from cycle 11
    ort.credit(13);   // the first buffer frees at cycle 13

    // Departure 11 would land downstream at 12, when no buffer is free.
    EXPECT_EQ(ort.freeBuffersAt(12), 0);
    EXPECT_EQ(ort.freeBuffersAt(13), 1);

    // The flit arriving at cycle 9: cycle 10 is busy, cycle 11 fails
    // the buffer check, so the earliest departure is cycle 12 — exactly
    // the figure's outcome.
    const Cycle depart =
        ort.findDeparture(10, [](Cycle) { return true; });
    EXPECT_EQ(depart, 12);

    ort.reserve(depart);
    EXPECT_TRUE(ort.busyAt(12));
    EXPECT_EQ(ort.freeBuffersAt(13), 0);  // decremented from t_d + t_p
}

/**
 * Naive reference for findDeparture, built only on the public
 * inspection accessors: for each candidate departure, re-check the
 * buffer suffix cycle by cycle. The production implementation answers
 * from the incrementally maintained suffix-minimum frontier; this scan
 * is the specification it must match.
 */
template <typename Predicate>
Cycle
referenceFindDeparture(const OutputReservationTable& ort,
                       Cycle min_depart, Predicate&& extra, int min_free)
{
    const Cycle lo = std::max(min_depart, ort.windowStart());
    const Cycle hi = ort.windowEnd() - ort.linkLatency();
    for (Cycle t = lo; t <= hi; ++t) {
        if (ort.busyAt(t))
            continue;
        bool feasible = true;
        for (Cycle a = t + ort.linkLatency(); a <= ort.windowEnd(); ++a) {
            if (ort.freeBuffersAt(a) < min_free) {
                feasible = false;
                break;
            }
        }
        if (!feasible)
            continue;
        if (!extra(t))
            continue;
        return t;
    }
    return kInvalidCycle;
}

/**
 * Property test for the cached-frontier fast path: drive randomized
 * reserve/credit/advance sequences (valid by construction — every
 * credit pairs with an outstanding reservation at or after its
 * downstream arrival, so the table's own overflow assertions stay
 * live) and require findDeparture to agree with the reference scan
 * for random (min_depart, min_free) queries after every mutation.
 */
TEST(OutputTableProperty, FastPathMatchesReferenceScan)
{
    struct Shape
    {
        int horizon;
        int buffers;
        Cycle latency;
    };
    for (const Shape& shape : {Shape{8, 2, 1}, Shape{16, 3, 2},
                               Shape{32, 6, 4}, Shape{64, 4, 3}}) {
        Rng rng(20260806,
                static_cast<std::uint64_t>(shape.horizon));
        OutputReservationTable ort(shape.horizon, shape.buffers,
                                   shape.latency);
        Cycle now = 0;
        std::vector<Cycle> outstanding;  // arrival cycles awaiting credit
        for (int step = 0; step < 600; ++step) {
            const std::uint64_t op = rng.nextBounded(4);
            if (op == 0) {
                // Slide the window forward a little.
                now += rng.nextRange(0, 2);
                ort.advance(now);
                // Credits can no longer land before the window.
                for (Cycle& a : outstanding)
                    a = std::max(a, ort.windowStart());
            } else if (op <= 2) {
                // Reserve wherever the scheduler itself would.
                const Cycle min_depart =
                    now + rng.nextRange(0, shape.horizon / 2);
                const Cycle d = ort.findDeparture(min_depart, kAny);
                if (d != kInvalidCycle) {
                    ort.reserve(d);
                    outstanding.push_back(d + shape.latency);
                }
            } else if (!outstanding.empty()) {
                // Credit a random outstanding reservation at or after
                // its downstream arrival.
                const std::uint64_t pick =
                    rng.nextBounded(outstanding.size());
                const Cycle arrival = outstanding[pick];
                const Cycle from = std::min(
                    arrival + rng.nextRange(0, 4), ort.windowEnd());
                ort.credit(from);
                outstanding[pick] = outstanding.back();
                outstanding.pop_back();
            }
            // Cross-check several queries against the reference.
            for (int q = 0; q < 3; ++q) {
                const Cycle min_depart =
                    now + rng.nextRange(0, shape.horizon);
                const int min_free =
                    static_cast<int>(rng.nextRange(1, 2));
                const bool odd_only = rng.nextBool(0.3);
                auto extra = [odd_only](Cycle t) {
                    return !odd_only || t % 2 != 0;
                };
                ASSERT_EQ(ort.findDeparture(min_depart, extra, min_free),
                          referenceFindDeparture(ort, min_depart, extra,
                                                 min_free))
                    << "horizon " << shape.horizon << " step " << step
                    << " min_depart " << min_depart << " min_free "
                    << min_free;
            }
        }
    }
}

/**
 * Naive reference for nextBusyCycleAfter: linear busyAt scan. The
 * production path answers from the packed busy bitmap (word scans plus
 * the busy_hint_ cache); this is the specification it must match.
 */
Cycle
referenceNextBusy(const OutputReservationTable& ort, Cycle after)
{
    for (Cycle t = std::max(after + 1, ort.windowStart());
         t <= ort.windowEnd(); ++t) {
        if (ort.busyAt(t))
            return t;
    }
    return kInvalidCycle;
}

/**
 * Long-run property test for the bitmap word scans (DESIGN.md §12):
 * >= 10k random reserve/credit/advance steps per table shape —
 * including non-power-of-two horizons, where the wheel is wider than
 * the window and slides across its seam repeatedly — cross-checking
 * findDeparture and nextBusyCycleAfter against the linear references
 * after every mutation.
 */
TEST(OutputTableProperty, BitmapScansMatchReferenceOverLongRuns)
{
    struct Shape
    {
        int horizon;
        int buffers;
        Cycle latency;
    };
    // 13 -> 16-slot wheel and 48 -> 64-slot wheel exercise the
    // out-of-window slot band; 16 and 64 exercise the exact-fit wheel
    // where the expiring slot IS the newly exposed slot.
    for (const Shape& shape : {Shape{13, 2, 1}, Shape{16, 3, 2},
                               Shape{48, 4, 3}, Shape{64, 6, 4}}) {
        Rng rng(20260807,
                static_cast<std::uint64_t>(shape.horizon));
        OutputReservationTable ort(shape.horizon, shape.buffers,
                                   shape.latency);
        Cycle now = 0;
        std::vector<Cycle> outstanding;  // arrival cycles awaiting credit
        for (int step = 0; step < 10000; ++step) {
            const std::uint64_t op = rng.nextBounded(5);
            if (op == 0) {
                now += rng.nextRange(0, 3);
                ort.advance(now);
                for (Cycle& a : outstanding)
                    a = std::max(a, ort.windowStart());
            } else if (op == 4) {
                // Occasionally leap several windows ahead so the wheel
                // wraps wholesale (the quiescent-jump path when empty).
                now += rng.nextRange(shape.horizon,
                                     3 * shape.horizon);
                ort.advance(now);
                for (Cycle& a : outstanding)
                    a = std::max(a, ort.windowStart());
            } else if (op <= 2) {
                const Cycle min_depart =
                    now + rng.nextRange(0, shape.horizon / 2);
                const Cycle d = ort.findDeparture(min_depart, kAny);
                if (d != kInvalidCycle) {
                    ort.reserve(d);
                    outstanding.push_back(d + shape.latency);
                }
            } else if (!outstanding.empty()) {
                const std::uint64_t pick =
                    rng.nextBounded(outstanding.size());
                const Cycle arrival = outstanding[pick];
                const Cycle from = std::min(
                    arrival + rng.nextRange(0, 4), ort.windowEnd());
                ort.credit(from);
                outstanding[pick] = outstanding.back();
                outstanding.pop_back();
            }
            const Cycle min_depart =
                now + rng.nextRange(0, shape.horizon);
            ASSERT_EQ(ort.findDeparture(min_depart, kAny),
                      referenceFindDeparture(ort, min_depart, kAny, 1))
                << "horizon " << shape.horizon << " step " << step;
            const Cycle after =
                now + rng.nextRange(0, shape.horizon) - 1;
            ASSERT_EQ(ort.nextBusyCycleAfter(after),
                      referenceNextBusy(ort, after))
                << "horizon " << shape.horizon << " step " << step
                << " after " << after;
        }
    }
}

/**
 * Wheel-seam edge cases with a non-power-of-two horizon (13 cycles in
 * a 16-slot wheel): reservations and credits that straddle the point
 * where cycle indices wrap must behave exactly as in the middle of the
 * window, and slots leaving the window must return to full capacity
 * before they are re-exposed.
 */
TEST(OutputTable, RingWraparoundAtHorizonBoundaries)
{
    OutputReservationTable ort(13, 3, 1);
    // Park the window so [12, 24] straddles the 16-slot seam.
    ort.advance(12);
    EXPECT_EQ(ort.windowEnd(), 24);
    ort.reserve(15);  // slot 15, last before the seam
    ort.reserve(16);  // slot 0, first after it
    EXPECT_TRUE(ort.busyAt(15));
    EXPECT_TRUE(ort.busyAt(16));
    EXPECT_EQ(ort.freeBuffersAt(15), 3);
    EXPECT_EQ(ort.freeBuffersAt(16), 2);  // 15's arrival
    EXPECT_EQ(ort.freeBuffersAt(17), 1);  // plus 16's
    EXPECT_EQ(ort.findDeparture(15, kAny), 17);
    EXPECT_EQ(ort.nextBusyCycleAfter(14), 15);
    EXPECT_EQ(ort.nextBusyCycleAfter(15), 16);
    EXPECT_EQ(ort.nextBusyCycleAfter(16), kInvalidCycle);
    // Credits across the seam restore the suffix exactly: the flit
    // arriving at 16 departs downstream at 17, the one arriving at 17
    // departs at 20.
    ort.credit(17);
    ort.credit(20);
    for (Cycle t = 17; t <= 19; ++t)
        EXPECT_EQ(ort.freeBuffersAt(t), 2) << t;
    for (Cycle t = 20; t <= 24; ++t)
        EXPECT_EQ(ort.freeBuffersAt(t), 3) << t;
    // Slide past both reservations; the busy bits expire and the
    // newly exposed cycles inherit the final count across the seam.
    ort.advance(17);
    EXPECT_FALSE(ort.busyAt(17));
    for (Cycle t = 20; t <= 29; ++t)
        EXPECT_EQ(ort.freeBuffersAt(t), 3) << t;
    EXPECT_EQ(ort.reservedCount(), 0);
    EXPECT_EQ(ort.findDeparture(17, kAny), 17);
}

/**
 * Exact-fit wheel (power-of-two horizon): when the window slides one
 * cycle, the slot that expires is the same slot the window re-exposes
 * at its far end. The expired state must be wiped before the inherited
 * buffer count is written, including when the expiring cycle is busy.
 */
TEST(OutputTable, ExpiredSlotIsReexposedSlotOnPow2Horizon)
{
    OutputReservationTable ort(16, 4, 2);
    ort.reserve(0);   // busy at the very slot about to expire
    ort.reserve(3);   // holds a buffer through the horizon
    EXPECT_EQ(ort.freeBuffersAt(15), 2);
    ort.advance(1);
    // Window now [1, 16]; slot index(0) == index(16).
    EXPECT_FALSE(ort.busyAt(16));
    EXPECT_EQ(ort.freeBuffersAt(16), 2);  // inherited, not reset
    EXPECT_EQ(ort.reservedCount(), 1);
    EXPECT_EQ(ort.nextBusyCycleAfter(1), 3);
}

TEST(OutputTableDeath, DoubleReserveSameCyclePanics)
{
    OutputReservationTable ort(16, 4, 2);
    ort.reserve(5);
    EXPECT_DEATH(ort.reserve(5), "double reservation");
}

TEST(OutputTableDeath, CreditOverflowPanics)
{
    OutputReservationTable ort(16, 4, 2);
    EXPECT_DEATH(ort.credit(3), "credit overflow");
}

TEST(OutputTableDeath, WindowNeverMovesBackwards)
{
    OutputReservationTable ort(16, 4, 2);
    ort.advance(10);
    EXPECT_DEATH(ort.advance(5), "backwards");
}

}  // namespace
}  // namespace frfc
