/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace frfc {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, SaltsProduceIndependentStreams)
{
    Rng a(7, 0);
    Rng b(7, 1);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(42);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng rng(42);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng rng(99);
    const int buckets = 10;
    const int draws = 100000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBounded(buckets)];
    for (int c : counts) {
        EXPECT_GT(c, draws / buckets * 0.9);
        EXPECT_LT(c, draws / buckets * 1.1);
    }
}

TEST(Rng, RangeIsInclusive)
{
    Rng rng(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo = saw_lo || v == -2;
        saw_hi = saw_hi || v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(17);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgesAreExact)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng parent(23);
    Rng child1 = parent.split(1);
    Rng child2 = parent.split(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += child1.next() == child2.next() ? 1 : 0;
    EXPECT_LT(equal, 3);
}

TEST(Rng, SplitMixAdvancesState)
{
    std::uint64_t state = 0;
    const auto a = splitMix64(state);
    const auto b = splitMix64(state);
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace frfc
