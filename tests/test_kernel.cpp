/**
 * @file
 * Kernel tests: run/runUntil boundary semantics in both modes,
 * wake-on-push, sleep/wake round trips, and stepped-vs-event
 * bit-identical end-to-end runs (golden + randomized configs).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/config.hpp"
#include "harness/presets.hpp"
#include "network/runner.hpp"
#include "sim/channel.hpp"
#include "sim/clocked.hpp"
#include "sim/kernel.hpp"

namespace frfc {
namespace {

/** Ticks every cycle (default quiescence) and records tick times. */
// frfc-analyzer: allow(next-wake): exercises the every-cycle default
class Counter : public Clocked
{
  public:
    Counter() : Clocked("counter") {}
    void tick(Cycle now) override { ticks.push_back(now); }
    std::vector<Cycle> ticks;
};

/** Sleeps immediately; only explicit wakes (or pushes) tick it. */
class Sleeper : public Clocked
{
  public:
    Sleeper() : Clocked("sleeper") {}
    void tick(Cycle now) override { ticks.push_back(now); }
    Cycle nextWake(Cycle /* now */) const override
    {
        return kInvalidCycle;
    }
    std::vector<Cycle> ticks;
};

/** Re-schedules itself every `period` cycles. */
class Periodic : public Clocked
{
  public:
    explicit Periodic(Cycle period) : Clocked("periodic"), period_(period)
    {
    }
    void tick(Cycle now) override { ticks.push_back(now); }
    Cycle nextWake(Cycle now) const override { return now + period_; }
    std::vector<Cycle> ticks;

  private:
    Cycle period_;
};

/** Drains a channel; sleeps unless the channel wakes it. */
class Receiver : public Clocked
{
  public:
    explicit Receiver(Channel<int>* ch) : Clocked("receiver"), ch_(ch) {}
    void tick(Cycle now) override
    {
        for (int v : ch_->drain(now))
            received.emplace_back(now, v);
    }
    Cycle nextWake(Cycle /* now */) const override
    {
        return kInvalidCycle;
    }
    std::vector<std::pair<Cycle, int>> received;

  private:
    Channel<int>* ch_;
};

TEST(KernelEvent, ModeDefaultsToSteppedAndConfigDefaultsToEvent)
{
    Kernel kernel;
    EXPECT_EQ(kernel.mode(), KernelMode::kStepped);

    Config cfg;
    EXPECT_EQ(kernelModeFromConfig(cfg), KernelMode::kEvent);
    cfg.set("sim.kernel", "stepped");
    EXPECT_EQ(kernelModeFromConfig(cfg), KernelMode::kStepped);
    cfg.set("sim.kernel", "event");
    EXPECT_EQ(kernelModeFromConfig(cfg), KernelMode::kEvent);
}

TEST(KernelEvent, RunsExactCycleCountForAlwaysAwakeComponent)
{
    Kernel kernel;
    Counter counter;
    kernel.setMode(KernelMode::kEvent);
    kernel.add(&counter);
    kernel.run(25);
    EXPECT_EQ(kernel.now(), 25);
    ASSERT_EQ(counter.ticks.size(), 25u);
    EXPECT_EQ(counter.ticks.front(), 0);
    EXPECT_EQ(counter.ticks.back(), 24);
    EXPECT_EQ(kernel.ticksExecuted(), 25);
    EXPECT_EQ(kernel.idleCyclesSkipped(), 0);
}

TEST(KernelEvent, FastForwardsAcrossIdleGaps)
{
    Kernel kernel;
    Sleeper sleeper;
    kernel.setMode(KernelMode::kEvent);
    kernel.add(&sleeper);
    kernel.run(1000);
    EXPECT_EQ(kernel.now(), 1000);
    ASSERT_EQ(sleeper.ticks.size(), 1u);  // the arming tick at cycle 0
    EXPECT_EQ(kernel.ticksExecuted(), 1);
    EXPECT_EQ(kernel.idleCyclesSkipped(), 999);
}

TEST(KernelEvent, PeriodicSelfSchedulingTicksOnSchedule)
{
    Kernel kernel;
    Periodic periodic(7);
    kernel.setMode(KernelMode::kEvent);
    kernel.add(&periodic);
    kernel.run(30);
    const std::vector<Cycle> expect{0, 7, 14, 21, 28};
    EXPECT_EQ(periodic.ticks, expect);
    EXPECT_EQ(kernel.now(), 30);
}

TEST(KernelEvent, WakeBeyondWheelSpanStillFires)
{
    Kernel kernel;
    Periodic periodic(5000);  // beyond the wheel span; overflow path
    kernel.setMode(KernelMode::kEvent);
    kernel.add(&periodic);
    kernel.run(10001);
    const std::vector<Cycle> expect{0, 5000, 10000};
    EXPECT_EQ(periodic.ticks, expect);
}

TEST(KernelEvent, PushWakesBoundReceiverAtArrivalCycle)
{
    Kernel kernel;
    Channel<int> ch("wire", 3);
    Receiver receiver(&ch);
    kernel.setMode(KernelMode::kEvent);
    kernel.add(&receiver);
    ch.bindSink(&kernel, &receiver);

    kernel.run(5);  // receiver arms at 0, then sleeps
    ASSERT_EQ(receiver.received.size(), 0u);
    ch.push(kernel.now(), 42);  // pushed at 5, arrives at 8
    kernel.run(20);
    ASSERT_EQ(receiver.received.size(), 1u);
    EXPECT_EQ(receiver.received[0].first, 8);
    EXPECT_EQ(receiver.received[0].second, 42);
    // Arming tick + the wake tick; everything else was skipped.
    EXPECT_EQ(kernel.ticksExecuted(), 2);
}

TEST(KernelEvent, SleepWakeRoundTrip)
{
    Kernel kernel;
    Sleeper sleeper;
    kernel.setMode(KernelMode::kEvent);
    kernel.add(&sleeper);
    kernel.run(10);
    ASSERT_EQ(sleeper.ticks.size(), 1u);

    kernel.wake(&sleeper, kernel.now() + 32);
    kernel.run(100);
    ASSERT_EQ(sleeper.ticks.size(), 2u);
    EXPECT_EQ(sleeper.ticks.back(), 42);
    EXPECT_EQ(kernel.now(), 110);
}

TEST(KernelEvent, DuplicateWakesCollapseToOneTick)
{
    Kernel kernel;
    Sleeper sleeper;
    kernel.setMode(KernelMode::kEvent);
    kernel.add(&sleeper);
    kernel.run(1);
    kernel.wake(&sleeper, 5);
    kernel.wake(&sleeper, 5);
    kernel.wake(&sleeper, 5);
    kernel.run(10);
    ASSERT_EQ(sleeper.ticks.size(), 2u);
    EXPECT_EQ(sleeper.ticks.back(), 5);
}

TEST(KernelEvent, RunUntilStopsOnPredicateWithoutExtraCycles)
{
    Kernel kernel;
    Counter counter;
    kernel.setMode(KernelMode::kEvent);
    kernel.add(&counter);
    const bool fired = kernel.runUntil(
        [&counter] { return counter.ticks.size() >= 10; }, 1000);
    EXPECT_TRUE(fired);
    EXPECT_EQ(counter.ticks.size(), 10u);
    EXPECT_EQ(kernel.now(), 10);
}

TEST(KernelEvent, RunUntilRespectsBudgetAndFastForwards)
{
    Kernel kernel;
    Sleeper sleeper;
    kernel.setMode(KernelMode::kEvent);
    kernel.add(&sleeper);
    const bool fired = kernel.runUntil([] { return false; }, 50);
    EXPECT_FALSE(fired);
    EXPECT_EQ(kernel.now(), 50);
    EXPECT_EQ(kernel.ticksExecuted(), 1);
}

TEST(KernelEvent, RunUntilWithInitiallyTruePredicateRunsNothing)
{
    Kernel kernel;
    Counter counter;
    kernel.setMode(KernelMode::kEvent);
    kernel.add(&counter);
    const bool fired = kernel.runUntil([] { return true; }, 100);
    EXPECT_TRUE(fired);
    EXPECT_EQ(kernel.now(), 0);
    EXPECT_TRUE(counter.ticks.empty());
}

TEST(KernelEvent, SteppedModeMatchesEventModeTickForTick)
{
    Kernel stepped;
    Kernel event;
    Counter counter_s;
    Counter counter_e;
    Periodic periodic_s(3);
    Periodic periodic_e(3);
    stepped.add(&counter_s);
    stepped.add(&periodic_s);
    event.setMode(KernelMode::kEvent);
    event.add(&counter_e);
    event.add(&periodic_e);
    stepped.run(50);
    event.run(50);
    EXPECT_EQ(counter_s.ticks, counter_e.ticks);
    // Stepped ticks the periodic component every cycle (its tick is a
    // no-op off-schedule in real components); the recorded times the
    // event kernel kept must be the scheduled subset.
    std::vector<Cycle> scheduled;
    for (Cycle c = 0; c < 50; c += 3)
        scheduled.push_back(c);
    EXPECT_EQ(periodic_e.ticks, scheduled);
}

RunOptions
fastOptions()
{
    RunOptions opt;
    opt.samplePackets = 400;
    opt.minWarmup = 500;
    opt.maxWarmup = 2000;
    opt.maxCycles = 80000;
    return opt;
}

void
expectModesBitIdentical(Config cfg, const RunOptions& opt)
{
    cfg.set("sim.kernel", "stepped");
    const RunResult stepped = runExperiment(cfg, opt);
    cfg.set("sim.kernel", "event");
    const RunResult event = runExperiment(cfg, opt);
    EXPECT_TRUE(stepped.bitIdentical(event))
        << "stepped vs event diverged: latency " << stepped.avgLatency
        << " vs " << event.avgLatency << ", cycles "
        << stepped.totalCycles << " vs " << event.totalCycles
        << ", delivered " << stepped.packetsDelivered << " vs "
        << event.packetsDelivered;
    EXPECT_EQ(stepped.totalCycles, event.totalCycles);
    EXPECT_EQ(stepped.avgLatency, event.avgLatency);
}

TEST(KernelEquivalence, GoldenFrRunIsBitIdentical)
{
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    applyPreset(cfg, "fr6");
    cfg.set("workload.offered", 0.5);
    cfg.set("seed", 12345);
    expectModesBitIdentical(cfg, fastOptions());
}

TEST(KernelEquivalence, GoldenVcRunIsBitIdentical)
{
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    applyPreset(cfg, "vc8");
    cfg.set("workload.offered", 0.5);
    cfg.set("seed", 12345);
    expectModesBitIdentical(cfg, fastOptions());
}

/** Randomized-config property: equivalence across schemes and loads. */
struct EquivPoint
{
    const char* preset;
    double load;
    int seed;
    bool leading;
    bool occupancy;
};

class KernelEquivalenceProperty
    : public ::testing::TestWithParam<EquivPoint>
{
};

TEST_P(KernelEquivalenceProperty, SteppedAndEventAgree)
{
    const EquivPoint p = GetParam();
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    applyPreset(cfg, p.preset);
    if (p.leading)
        applyLeadingControl(cfg, 2);
    cfg.set("workload.offered", p.load);
    cfg.set("seed", p.seed);
    RunOptions opt = fastOptions();
    opt.trackOccupancy = p.occupancy;
    expectModesBitIdentical(cfg, opt);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelEquivalenceProperty,
    ::testing::Values(
        EquivPoint{"fr6", 0.05, 7, false, false},
        EquivPoint{"fr6", 0.80, 11, false, true},
        EquivPoint{"fr13", 0.45, 23, false, false},
        EquivPoint{"fr6", 0.30, 31, true, false},
        EquivPoint{"vc8", 0.05, 7, false, true},
        EquivPoint{"vc8", 0.80, 11, false, false},
        EquivPoint{"vc16", 0.45, 23, false, false}));

}  // namespace
}  // namespace frfc
