/**
 * @file
 * Section 5 extensions: error recovery under data-flit loss (tables
 * return to a consistent state, no stalled links, no buffer leaks) and
 * plesiochronous buffer-release slack.
 */

#include <gtest/gtest.h>

#include "frfc/input_table.hpp"
#include "harness/presets.hpp"
#include "network/fr_network.hpp"
#include "network/runner.hpp"
#include "topology/topology.hpp"

namespace frfc {
namespace {

Flit
makeFlit(PacketId id, int seq)
{
    Flit flit;
    flit.packet = id;
    flit.seq = seq;
    flit.packetLength = 2;
    flit.payload = Flit::expectedPayload(id, seq);
    return flit;
}

TEST(FaultTolerantTable, MissedArrivalVoidsDeparture)
{
    InputReservationTable irt(16, 4);
    irt.setFaultTolerant(true);
    irt.recordReservation(0, 3, 7, kEast);
    // The flit never arrives; sliding past cycle 3 voids it instead of
    // panicking.
    for (Cycle t = 1; t <= 7; ++t) {
        irt.advance(t);
        EXPECT_TRUE(irt.takeDepartures(t).empty()) << t;
    }
    EXPECT_EQ(irt.lostArrivals(), 1);
    // And the table is still fully usable afterwards.
    irt.recordReservation(7, 9, 11, kWest);
    irt.advance(8);
    irt.advance(9);
    irt.acceptFlit(9, makeFlit(1, 0));
    irt.advance(10);
    irt.advance(11);
    EXPECT_EQ(irt.takeDepartures(11).size(), 1u);
}

TEST(FaultTolerantTable, LateControlAfterLossVoidsImmediately)
{
    InputReservationTable irt(16, 4);
    irt.setFaultTolerant(true);
    // Control flit processed at cycle 5 references an arrival at 2 that
    // was dropped in flight (never parked).
    for (Cycle t = 1; t <= 5; ++t)
        irt.advance(t);
    irt.recordReservation(5, 2, 8, kEast);
    EXPECT_EQ(irt.lostArrivals(), 1);
    for (Cycle t = 6; t <= 8; ++t) {
        irt.advance(t);
        EXPECT_TRUE(irt.takeDepartures(t).empty());
    }
}

TEST(FaultTolerantTable, StrictModeStillPanics)
{
    InputReservationTable irt(16, 4);
    irt.recordReservation(0, 3, 7, kEast);
    irt.advance(3);
    EXPECT_DEATH(irt.advance(4), "never materialized");
}

TEST(FaultInjection, NetworkSurvivesSustainedLoss)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.3);
    cfg.set("fault.data_drop_rate", 0.05);
    FrNetwork net(cfg);
    // No measurement protocol: losses mean some packets never complete.
    // The property under test is liveness and table consistency (the
    // internal assertions) over a long run.
    net.kernel().run(20000);
    EXPECT_GT(net.totalDropped(), 0);
    EXPECT_GE(net.totalLostArrivals(), net.totalDropped());
    EXPECT_GT(net.registry().packetsDelivered(), 0);
    // Traffic keeps flowing at a healthy rate despite the losses.
    const double delivered_per_cycle =
        static_cast<double>(net.registry().flitsDelivered()) / 20000.0;
    EXPECT_GT(delivered_per_cycle, 0.3 * net.capacity()
                                       * net.topology().numNodes()
                                       * 0.5);
}

TEST(FaultInjection, CreditLedgerRecoversFromRepeatedCreditCorruption)
{
    // Satellite (PR 9): advance credits mangled on the wire are
    // CRC-detected and applied as horizon-end timestamps, so the
    // credit ledger conserves — repeatedly, on both serial kernels.
    for (const char* kernel : {"stepped", "event"}) {
        Config cfg = baseConfig();
        applyFr6(cfg);
        cfg.set("size_x", 4);
        cfg.set("size_y", 4);
        cfg.set("workload.offered", 0.3);
        cfg.set("sim.kernel", kernel);
        cfg.set("sim.validate", 2);
        // A far-future outage engages fault tolerance (and the
        // corruption semantics of the drop hook) without any RNG
        // draws perturbing the run.
        cfg.set("fault.schedule", "0->1@900000:900001");
        FrNetwork net(cfg);
        net.validator().setFailFast(false);
        const NodeId middle = net.topology().nodeAt(2, 2);
        for (int round = 0; round < 40; ++round) {
            for (PortId p = kEast; p <= kSouth; ++p)
                net.router(middle).testDropNextAdvanceCredit(p);
            net.kernel().run(100);
        }
        net.kernel().run(4000);
        net.validateState(net.kernel().now());
        EXPECT_TRUE(net.validator().clean()) << kernel;
        // Counted where the mangled credit is applied: middle's
        // upstream neighbours.
        EXPECT_GT(net.totalCreditsCorrupted(), 0) << kernel;
        EXPECT_GT(net.registry().packetsDelivered(), 0) << kernel;
    }
}

TEST(FaultInjection, LossFreeRunsAreUnaffectedByTheMachinery)
{
    Config clean = baseConfig();
    applyFr6(clean);
    clean.set("size_x", 4);
    clean.set("size_y", 4);
    clean.set("workload.offered", 0.3);
    Config zero = clean;
    zero.set("fault.data_drop_rate", 0.0);
    RunOptions opt;
    opt.samplePackets = 300;
    opt.minWarmup = 500;
    opt.maxWarmup = 2000;
    opt.maxCycles = 40000;
    const RunResult a = runExperiment(clean, opt);
    const RunResult b = runExperiment(zero, opt);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
}

TEST(Plesiochronous, ExtraHoldCycleStillDelivers)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.4);
    cfg.set("plesiochronous", true);
    RunOptions opt;
    opt.samplePackets = 400;
    opt.minWarmup = 500;
    opt.maxWarmup = 2000;
    opt.maxCycles = 50000;
    const RunResult r = runExperiment(cfg, opt);
    EXPECT_TRUE(r.complete);
}

TEST(Plesiochronous, SlackCannotImproveLatency)
{
    RunOptions opt;
    opt.samplePackets = 500;
    opt.minWarmup = 500;
    opt.maxWarmup = 2000;
    opt.maxCycles = 60000;
    Config meso = baseConfig();
    applyFr6(meso);
    meso.set("size_x", 4);
    meso.set("size_y", 4);
    meso.set("workload.offered", 0.6);
    Config plesio = meso;
    plesio.set("plesiochronous", true);
    const RunResult a = runExperiment(meso, opt);
    const RunResult b = runExperiment(plesio, opt);
    ASSERT_TRUE(a.complete);
    ASSERT_TRUE(b.complete);
    EXPECT_GE(b.avgLatency, a.avgLatency * 0.98);
}

}  // namespace
}  // namespace frfc
