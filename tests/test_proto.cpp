/**
 * @file
 * Unit tests for arbiters, the buffer pool, flit payloads, and the
 * packet registry.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "proto/arbiter.hpp"
#include "proto/buffer_pool.hpp"
#include "proto/flit.hpp"
#include "proto/packet_registry.hpp"

namespace frfc {
namespace {

TEST(RandomArbiter, ReturnsMinusOneOnNoRequests)
{
    RandomArbiter arb(Rng(1));
    EXPECT_EQ(arb.pick({false, false, false}), -1);
    EXPECT_EQ(arb.pick({}), -1);
}

TEST(RandomArbiter, PicksTheOnlyRequestor)
{
    RandomArbiter arb(Rng(1));
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(arb.pick({false, true, false}), 1);
}

TEST(RandomArbiter, IsFairAcrossRequestors)
{
    RandomArbiter arb(Rng(2));
    std::map<int, int> wins;
    const int rounds = 30000;
    for (int i = 0; i < rounds; ++i)
        ++wins[arb.pick({true, true, true})];
    for (int k = 0; k < 3; ++k)
        EXPECT_NEAR(wins[k], rounds / 3, rounds / 3 * 0.1) << k;
}

TEST(RoundRobinArbiter, RotatesPriority)
{
    RoundRobinArbiter arb;
    EXPECT_EQ(arb.pick({true, true, true}), 0);
    EXPECT_EQ(arb.pick({true, true, true}), 1);
    EXPECT_EQ(arb.pick({true, true, true}), 2);
    EXPECT_EQ(arb.pick({true, true, true}), 0);
}

TEST(RoundRobinArbiter, SkipsIdleRequestors)
{
    RoundRobinArbiter arb;
    EXPECT_EQ(arb.pick({false, false, true}), 2);
    EXPECT_EQ(arb.pick({true, false, true}), 0);
    EXPECT_EQ(arb.pick({false, false, false}), -1);
}

TEST(ArbiterFactory, BuildsBothKinds)
{
    EXPECT_EQ(makeArbiter("random", Rng(1))->describe(), "random");
    EXPECT_EQ(makeArbiter("roundrobin", Rng(1))->describe(),
              "round-robin");
}

TEST(BufferPool, AllocatesUntilFull)
{
    BufferPool pool(3);
    EXPECT_EQ(pool.freeCount(), 3);
    EXPECT_NE(pool.allocate(), kInvalidBuffer);
    EXPECT_NE(pool.allocate(), kInvalidBuffer);
    EXPECT_NE(pool.allocate(), kInvalidBuffer);
    EXPECT_TRUE(pool.full());
    EXPECT_EQ(pool.allocate(), kInvalidBuffer);
}

TEST(BufferPool, ReleaseRecycles)
{
    BufferPool pool(2);
    const BufferId a = pool.allocate();
    const BufferId b = pool.allocate();
    pool.release(a);
    EXPECT_EQ(pool.freeCount(), 1);
    const BufferId c = pool.allocate();
    EXPECT_EQ(c, a);  // lowest free slot
    EXPECT_NE(c, b);
}

TEST(BufferPool, StoresAndConsumesFlit)
{
    BufferPool pool(2);
    const BufferId id = pool.allocate();
    Flit flit;
    flit.packet = 7;
    flit.seq = 3;
    pool.write(id, flit);
    EXPECT_EQ(pool.read(id).packet, 7);
    const Flit out = pool.consume(id);
    EXPECT_EQ(out.seq, 3);
    EXPECT_EQ(pool.freeCount(), 2);
}

TEST(BufferPool, OccupancyBitsTrackAllocation)
{
    BufferPool pool(2);
    const BufferId id = pool.allocate();
    EXPECT_TRUE(pool.occupied(id));
    pool.release(id);
    EXPECT_FALSE(pool.occupied(id));
}

TEST(BufferPoolDeath, DoubleReleasePanics)
{
    BufferPool pool(1);
    const BufferId id = pool.allocate();
    pool.release(id);
    EXPECT_DEATH(pool.release(id), "double release");
}

TEST(BufferPoolDeath, ReadOfEmptyPanics)
{
    BufferPool pool(1);
    const BufferId id = pool.allocate();
    EXPECT_DEATH(pool.read(id), "empty buffer");
}

TEST(Flit, PayloadIsDeterministicAndDistinct)
{
    EXPECT_EQ(Flit::expectedPayload(1, 2), Flit::expectedPayload(1, 2));
    EXPECT_NE(Flit::expectedPayload(1, 2), Flit::expectedPayload(1, 3));
    EXPECT_NE(Flit::expectedPayload(1, 2), Flit::expectedPayload(2, 2));
}

TEST(Flit, ToStringIsInformative)
{
    Flit flit;
    flit.packet = 9;
    flit.seq = 0;
    flit.packetLength = 5;
    flit.head = true;
    flit.src = 1;
    flit.dest = 2;
    const std::string s = flit.toString();
    EXPECT_NE(s.find("pkt=9"), std::string::npos);
    EXPECT_NE(s.find("H"), std::string::npos);
}

TEST(Registry, TracksLifecycle)
{
    PacketRegistry reg;
    const PacketId id = reg.create(0, 5, 2, 100);
    EXPECT_EQ(reg.packetsCreated(), 1);
    EXPECT_EQ(reg.packetsInFlight(), 1);

    Flit f0;
    f0.packet = id;
    f0.seq = 0;
    f0.dest = 5;
    f0.payload = Flit::expectedPayload(id, 0);
    reg.deliverFlit(150, f0);
    EXPECT_EQ(reg.packetsDelivered(), 0);

    Flit f1 = f0;
    f1.seq = 1;
    f1.payload = Flit::expectedPayload(id, 1);
    reg.deliverFlit(160, f1);
    EXPECT_EQ(reg.packetsDelivered(), 1);
    EXPECT_EQ(reg.packetsInFlight(), 0);
    EXPECT_EQ(reg.flitsDelivered(), 2);
}

TEST(Registry, SamplesLatencyOfMarkedPackets)
{
    PacketRegistry reg;
    reg.startSampling(1);
    const PacketId id = reg.create(0, 3, 1, 100);
    EXPECT_TRUE(reg.sampleFullyCreated());
    EXPECT_FALSE(reg.sampleFullyDelivered());

    Flit f;
    f.packet = id;
    f.seq = 0;
    f.dest = 3;
    f.payload = Flit::expectedPayload(id, 0);
    reg.deliverFlit(142, f);
    EXPECT_TRUE(reg.sampleFullyDelivered());
    EXPECT_EQ(reg.sampleLatency().count(), 1);
    EXPECT_DOUBLE_EQ(reg.sampleLatency().mean(), 42.0);
}

TEST(Registry, PacketsBeyondTargetAreNotSampled)
{
    PacketRegistry reg;
    reg.startSampling(1);
    const PacketId a = reg.create(0, 3, 1, 0);
    const PacketId b = reg.create(0, 3, 1, 0);
    for (PacketId id : {a, b}) {
        Flit f;
        f.packet = id;
        f.seq = 0;
        f.dest = 3;
        f.payload = Flit::expectedPayload(id, 0);
        reg.deliverFlit(10, f);
    }
    EXPECT_EQ(reg.sampleLatency().count(), 1);
}

TEST(RegistryDeath, DuplicateFlitPanics)
{
    PacketRegistry reg;
    const PacketId id = reg.create(0, 3, 2, 0);
    Flit f;
    f.packet = id;
    f.seq = 0;
    f.dest = 3;
    f.payload = Flit::expectedPayload(id, 0);
    reg.deliverFlit(5, f);
    EXPECT_DEATH(reg.deliverFlit(6, f), "duplicate");
}

TEST(RegistryDeath, CorruptPayloadPanics)
{
    PacketRegistry reg;
    const PacketId id = reg.create(0, 3, 1, 0);
    Flit f;
    f.packet = id;
    f.seq = 0;
    f.dest = 3;
    f.payload = 12345;  // wrong
    EXPECT_DEATH(reg.deliverFlit(5, f), "corrupted payload");
}

TEST(RegistryDeath, MisdeliveryPanics)
{
    PacketRegistry reg;
    const PacketId id = reg.create(0, 3, 1, 0);
    Flit f;
    f.packet = id;
    f.seq = 0;
    f.dest = 4;  // wrong destination recorded in the flit
    f.payload = Flit::expectedPayload(id, 0);
    EXPECT_DEATH(reg.deliverFlit(5, f), "misdelivered");
}

}  // namespace
}  // namespace frfc
