/**
 * @file
 * Stress tests: drive every scheme deep into saturation and through
 * pathological configurations for a bounded number of cycles. The
 * simulator's internal assertions (credit conservation, reservation
 * consistency, pool accounting, channel discipline) run throughout;
 * afterwards the network must still drain completely once generation
 * stops — saturation may be ugly, but it must never wedge or corrupt.
 */

#include <gtest/gtest.h>

#include "harness/presets.hpp"
#include "network/network.hpp"
#include "proto/packet_registry.hpp"
#include "topology/topology.hpp"

namespace frfc {
namespace {

struct StressCase
{
    const char* name;
    const char* preset;
    double offered;
    int packetLength;
    bool leading;
    const char* traffic;
};

class Stress : public ::testing::TestWithParam<StressCase>
{
};

TEST_P(Stress, SurvivesSaturationAndDrains)
{
    const StressCase& c = GetParam();
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    applyPreset(cfg, c.preset);
    cfg.set("workload.offered", c.offered);
    cfg.set("workload.packet_length", c.packetLength);
    cfg.set("traffic", c.traffic);
    if (c.leading)
        applyLeadingControl(cfg, 1);

    auto net = makeNetwork(cfg);
    PacketRegistry& reg = net->registry();

    // Hammer it well past saturation.
    net->kernel().run(8000);
    EXPECT_GT(reg.packetsDelivered(), 0) << c.name;

    // Stop generating; everything in flight must reach a destination.
    net->setGenerating(false);
    const bool drained = net->kernel().runUntil(
        [&reg] { return reg.packetsInFlight() == 0; }, 60000);
    EXPECT_TRUE(drained) << c.name << ": network wedged with "
                         << reg.packetsInFlight() << " packets stuck";
    EXPECT_EQ(reg.flitsDelivered(),
              reg.packetsCreated() * c.packetLength)
        << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Saturation, Stress,
    ::testing::Values(
        StressCase{"vc8_sat", "vc8", 1.0, 5, false, "uniform"},
        StressCase{"vc32_sat", "vc32", 1.2, 5, false, "uniform"},
        StressCase{"wormhole_sat", "wormhole8", 1.0, 5, false,
                   "uniform"},
        StressCase{"fr6_sat", "fr6", 1.0, 5, false, "uniform"},
        StressCase{"fr13_sat", "fr13", 1.2, 5, false, "uniform"},
        StressCase{"fr6_leading_sat", "fr6", 1.0, 5, true, "uniform"},
        StressCase{"fr6_long_packets", "fr6", 0.9, 21, false,
                   "uniform"},
        StressCase{"vc8_long_packets", "vc8", 0.9, 21, false,
                   "uniform"},
        StressCase{"fr6_transpose", "fr6", 0.9, 5, false, "transpose"},
        StressCase{"fr6_hotspot", "fr6", 0.8, 5, false, "hotspot"},
        StressCase{"vc8_tornado", "vc8", 0.9, 5, false, "tornado"},
        StressCase{"fr6_single_flit", "fr6", 1.0, 1, false, "uniform"}),
    [](const ::testing::TestParamInfo<StressCase>& info) {
        return std::string(info.param.name);
    });

TEST(StressEdge, TinyMeshSaturates)
{
    // 2x2 mesh: minimal topology, every node an edge corner.
    for (const char* preset : {"vc8", "fr6"}) {
        Config cfg = baseConfig();
        cfg.set("size_x", 2);
        cfg.set("size_y", 2);
        applyPreset(cfg, preset);
        cfg.set("workload.offered", 1.0);
        auto net = makeNetwork(cfg);
        net->kernel().run(5000);
        net->setGenerating(false);
        PacketRegistry& reg = net->registry();
        EXPECT_TRUE(net->kernel().runUntil(
            [&reg] { return reg.packetsInFlight() == 0; }, 20000))
            << preset;
    }
}

TEST(StressEdge, RectangularMeshSaturates)
{
    for (const char* preset : {"vc8", "fr6"}) {
        Config cfg = baseConfig();
        cfg.set("size_x", 8);
        cfg.set("size_y", 2);
        applyPreset(cfg, preset);
        cfg.set("workload.offered", 0.9);
        auto net = makeNetwork(cfg);
        net->kernel().run(5000);
        net->setGenerating(false);
        PacketRegistry& reg = net->registry();
        EXPECT_TRUE(net->kernel().runUntil(
            [&reg] { return reg.packetsInFlight() == 0; }, 40000))
            << preset;
    }
}

TEST(StressEdge, MinimalFrResourcesStillWork)
{
    // One data buffer, one control VC of depth one, narrow control.
    Config cfg = baseConfig();
    cfg.set("size_x", 3);
    cfg.set("size_y", 3);
    cfg.set("scheme", "fr");
    cfg.set("data_buffers", 1);
    cfg.set("ctrl_vcs", 1);
    cfg.set("ctrl_vc_depth", 1);
    cfg.set("ctrl_width", 1);
    cfg.set("workload.offered", 0.3);
    auto net = makeNetwork(cfg);
    net->kernel().run(8000);
    net->setGenerating(false);
    PacketRegistry& reg = net->registry();
    EXPECT_GT(reg.packetsDelivered(), 0);
    EXPECT_TRUE(net->kernel().runUntil(
        [&reg] { return reg.packetsInFlight() == 0; }, 60000));
}

}  // namespace
}  // namespace frfc
