/**
 * @file
 * Conservative parallel kernel tests: shard-plan construction, and the
 * core determinism claim — `sim.kernel=parallel` is bit-identical to
 * the serial stepped and event kernels for every shard count and
 * partition policy, including under paranoid validation.
 *
 * Suite names carry "ParallelKernel" so the ThreadSanitizer ctest
 * matrix (scripts/static_checks.sh, -R 'Parallel|Thread|Executor')
 * picks every test up automatically.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "harness/presets.hpp"
#include "network/network.hpp"
#include "network/runner.hpp"
#include "sim/parallel_kernel.hpp"
#include "sim/shard.hpp"
#include "topology/topology.hpp"

namespace frfc {
namespace {

// ---------------------------------------------------------------- //
// Shard plans                                                      //
// ---------------------------------------------------------------- //

std::unique_ptr<Topology>
mesh(int x, int y)
{
    Config cfg;
    cfg.set("topology", "mesh");
    cfg.set("size_x", x);
    cfg.set("size_y", y);
    return makeTopology(cfg);
}

void
expectValidPlan(const ShardPlan& plan, int nodes, int shards)
{
    EXPECT_EQ(plan.shards, shards);
    ASSERT_EQ(plan.owner.size(), static_cast<std::size_t>(nodes));
    const std::vector<int> counts = plan.counts();
    ASSERT_EQ(counts.size(), static_cast<std::size_t>(shards));
    int total = 0;
    for (const int c : counts) {
        EXPECT_GT(c, 0);  // every shard owns at least one node
        total += c;
    }
    EXPECT_EQ(total, nodes);
}

TEST(ParallelKernelShardPlan, StripedBalancedAndContiguous)
{
    const auto topo_p = mesh(8, 8);
    const Topology& topo = *topo_p;
    for (const int shards : {1, 2, 3, 7, 16, 64}) {
        const ShardPlan plan = makeStripedPlan(topo, shards);
        expectValidPlan(plan, 64, shards);
        const std::vector<int> counts = plan.counts();
        const int lo =
            *std::min_element(counts.begin(), counts.end());
        const int hi =
            *std::max_element(counts.begin(), counts.end());
        EXPECT_LE(hi - lo, 1) << shards << " shards";
        // Contiguous node-id ranges: owner never decreases.
        for (NodeId n = 1; n < topo.numNodes(); ++n)
            EXPECT_GE(plan.ownerOf(n), plan.ownerOf(n - 1));
    }
}

TEST(ParallelKernelShardPlan, BisectCoversEveryNodeOnce)
{
    const auto topo_p = mesh(8, 8);
    const Topology& topo = *topo_p;
    for (const int shards : {1, 2, 3, 5, 8, 16})
        expectValidPlan(makeBisectPlan(topo, shards), 64, shards);
    // Odd grid, odd shard count: still feasible.
    const auto odd_p = mesh(5, 3);
    const Topology& odd = *odd_p;
    for (const int shards : {1, 2, 3, 7, 15})
        expectValidPlan(makeBisectPlan(odd, shards), 15, shards);
}

TEST(ParallelKernelShardPlan, ConfigClampsShardsToNodeCount)
{
    const auto topo_p = mesh(4, 4);
    const Topology& topo = *topo_p;
    Config cfg;
    cfg.set("sim.shards", 99);
    expectValidPlan(makeShardPlan(cfg, topo), 16, 16);
    cfg.set("sim.shards", "auto");
    const ShardPlan plan = makeShardPlan(cfg, topo);
    EXPECT_GE(plan.shards, 1);
    EXPECT_LE(plan.shards, 16);
}

// ---------------------------------------------------------------- //
// Serial/parallel equivalence                                      //
// ---------------------------------------------------------------- //

RunOptions
fastOpts()
{
    RunOptions opt;
    opt.samplePackets = 250;
    opt.minWarmup = 300;
    opt.maxWarmup = 1200;
    opt.maxCycles = 60000;
    return opt;
}

Config
smallConfig(const char* preset, long seed)
{
    Config cfg = baseConfig();
    if (std::string(preset) == "fr6")
        applyFr6(cfg);
    else
        applyVc8(cfg);
    cfg.set("size_x", 8);
    cfg.set("size_y", 8);
    cfg.set("workload.offered", 0.35);
    cfg.set("seed", seed);
    return cfg;
}

RunResult
runSerial(Config cfg, const char* kernel)
{
    cfg.set("sim.kernel", kernel);
    auto net = makeNetwork(cfg);
    return runMeasurement(*net, fastOpts());
}

RunResult
runParallel(Config cfg, int shards, const char* partition,
            int validate = 0)
{
    cfg.set("sim.kernel", "parallel");
    cfg.set("sim.shards", shards);
    cfg.set("sim.partition", partition);
    cfg.set("sim.validate", validate);
    auto net = makeNetwork(cfg);
    EXPECT_TRUE(net->parallelEnabled());
    const RunResult r = runMeasurement(*net, fastOpts());
    if (validate >= 1) {
        EXPECT_TRUE(net->validator().clean());
    }
    return r;
}

void
expectAllShardCountsIdentical(const char* preset, long seed)
{
    const Config cfg = smallConfig(preset, seed);
    const RunResult stepped = runSerial(cfg, "stepped");
    const RunResult event = runSerial(cfg, "event");
    ASSERT_TRUE(stepped.bitIdentical(event))
        << preset << " seed " << seed << ": serial kernels diverge";
    ASSERT_TRUE(stepped.complete);
    for (const int shards : {1, 2, 7, 16}) {
        for (const char* partition : {"striped", "bisect"}) {
            const RunResult par = runParallel(cfg, shards, partition);
            EXPECT_TRUE(stepped.bitIdentical(par))
                << preset << " seed " << seed << " shards " << shards
                << " partition " << partition;
        }
    }
}

TEST(ParallelKernelEquivalence, FrBitIdenticalAcrossShardCounts)
{
    expectAllShardCountsIdentical("fr6", 1);
}

TEST(ParallelKernelEquivalence, FrBitIdenticalSecondSeed)
{
    expectAllShardCountsIdentical("fr6", 42);
}

TEST(ParallelKernelEquivalence, VcBitIdenticalAcrossShardCounts)
{
    expectAllShardCountsIdentical("vc8", 1);
}

TEST(ParallelKernelEquivalence, VcBitIdenticalSecondSeed)
{
    expectAllShardCountsIdentical("vc8", 42);
}

TEST(ParallelKernelEquivalence, ParanoidValidationCleanAndIdentical)
{
    for (const char* preset : {"fr6", "vc8"}) {
        const Config cfg = smallConfig(preset, 7);
        const RunResult event = runSerial(cfg, "event");
        const RunResult par =
            runParallel(cfg, 4, "bisect", /*validate=*/2);
        EXPECT_TRUE(event.bitIdentical(par)) << preset;
        EXPECT_TRUE(par.complete) << preset;
    }
}

// ---------------------------------------------------------------- //
// Driver plumbing and balance statistics                           //
// ---------------------------------------------------------------- //

TEST(ParallelKernelStats, ShardBalanceCountersConsistent)
{
    Config cfg = smallConfig("fr6", 3);
    cfg.set("sim.kernel", "parallel");
    cfg.set("sim.shards", 4);
    auto net = makeNetwork(cfg);
    ASSERT_TRUE(net->parallelEnabled());
    ParallelKernel* pk = net->parallelKernel();
    ASSERT_NE(pk, nullptr);
    EXPECT_EQ(pk->shardCount(), 4);
    EXPECT_GE(pk->lookahead(), 1);

    net->driver().run(2000);
    EXPECT_EQ(net->driver().now(), 2000);
    EXPECT_GT(pk->windowsExecuted(), 0);

    const std::vector<std::int64_t> ticks = pk->shardTicks();
    const std::vector<std::size_t> comps = pk->shardComponents();
    ASSERT_EQ(ticks.size(), 4u);
    ASSERT_EQ(comps.size(), 4u);
    for (const std::size_t c : comps)
        EXPECT_GT(c, 0u);  // every shard got components
    const std::int64_t total =
        std::accumulate(ticks.begin(), ticks.end(), std::int64_t{0});
    EXPECT_EQ(total, net->driver().ticksExecuted());
}

TEST(ParallelKernelStats, RunUntilStopsAtSerialCycle)
{
    const Config cfg = smallConfig("vc8", 11);
    // bitIdentical covers totalCycles, but make the runUntil contract
    // explicit: the parallel driver must stop on the exact cycle the
    // serial kernel does, not at its next window boundary.
    const RunResult event = runSerial(cfg, "event");
    const RunResult par = runParallel(cfg, 3, "striped");
    EXPECT_EQ(event.totalCycles, par.totalCycles);
    EXPECT_EQ(event.warmupCycles, par.warmupCycles);
}

}  // namespace
}  // namespace frfc
