/**
 * @file
 * Router-level tests for the optional flit-reservation mechanisms:
 * plesiochronous credit slack, all-or-nothing group scheduling, and
 * wide control flits through a single router.
 */

#include <gtest/gtest.h>

#include <memory>

#include "frfc/fr_router.hpp"
#include "proto/flit.hpp"
#include "routing/routing.hpp"
#include "sim/channel.hpp"
#include "topology/mesh.hpp"

namespace frfc {
namespace {

/** Center router of a 3x3 mesh with configurable FrParams. */
class FrModesFixture
{
  public:
    explicit FrModesFixture(const FrParams& params)
        : mesh_(3, 3), routing_(mesh_, true), params_(params),
          router_("r4", 4, routing_, params, Rng(1))
    {
        for (PortId p = 0; p < kNumPorts; ++p) {
            din_[p] = std::make_unique<Channel<Flit>>(
                "din" + std::to_string(p), p == kLocal ? 1 : 4);
            dout_[p] = std::make_unique<Channel<Flit>>(
                "dout" + std::to_string(p), p == kLocal ? 1 : 4);
            ctlin_[p] = std::make_unique<Channel<ControlFlit>>(
                "cin" + std::to_string(p), 1, params.ctrlWidth);
            ctlout_[p] = std::make_unique<Channel<ControlFlit>>(
                "cout" + std::to_string(p), 1, params.ctrlWidth);
            frcin_[p] = std::make_unique<Channel<FrCredit>>(
                "fin" + std::to_string(p), 1, 16);
            frcout_[p] = std::make_unique<Channel<FrCredit>>(
                "fout" + std::to_string(p), 1, 16);
            ccin_[p] = std::make_unique<Channel<Credit>>(
                "ccin" + std::to_string(p), 1, params.ctrlWidth);
            ccout_[p] = std::make_unique<Channel<Credit>>(
                "ccout" + std::to_string(p), 1, params.ctrlWidth);
            router_.connectDataIn(p, din_[p].get());
            router_.connectDataOut(p, dout_[p].get());
            router_.connectCtrlIn(p, ctlin_[p].get());
            if (p != kLocal)
                router_.connectCtrlOut(p, ctlout_[p].get());
            router_.connectFrCreditIn(p, frcin_[p].get());
            router_.connectFrCreditOut(p, frcout_[p].get());
            router_.connectCtrlCreditIn(p, ccin_[p].get());
            router_.connectCtrlCreditOut(p, ccout_[p].get());
        }
    }

    /** Tick, draining every output so channels never clog. */
    void
    run(Cycle from, Cycle to)
    {
        for (Cycle t = from; t <= to; ++t) {
            router_.tick(t);
            for (PortId p = 0; p < kNumPorts; ++p) {
                for (const Flit& f : dout_[p]->drain(t))
                    data_out.emplace_back(t, f);
                for (const ControlFlit& cf : ctlout_[p]->drain(t))
                    ctrl_out.emplace_back(t, cf);
                for (const FrCredit& cr : frcout_[p]->drain(t))
                    credits_out.emplace_back(t, cr);
                ccout_[p]->drain(t);
            }
        }
    }

    Flit
    makeData(PacketId id, int seq, NodeId dest)
    {
        Flit f;
        f.packet = id;
        f.seq = seq;
        f.packetLength = 4;
        f.src = 3;
        f.dest = dest;
        f.payload = Flit::expectedPayload(id, seq);
        return f;
    }

    Mesh2D mesh_;
    DimensionOrderRouting routing_;
    FrParams params_;
    FrRouter router_;
    std::unique_ptr<Channel<Flit>> din_[kNumPorts];
    std::unique_ptr<Channel<Flit>> dout_[kNumPorts];
    std::unique_ptr<Channel<ControlFlit>> ctlin_[kNumPorts];
    std::unique_ptr<Channel<ControlFlit>> ctlout_[kNumPorts];
    std::unique_ptr<Channel<FrCredit>> frcin_[kNumPorts];
    std::unique_ptr<Channel<FrCredit>> frcout_[kNumPorts];
    std::unique_ptr<Channel<Credit>> ccin_[kNumPorts];
    std::unique_ptr<Channel<Credit>> ccout_[kNumPorts];

    std::vector<std::pair<Cycle, Flit>> data_out;
    std::vector<std::pair<Cycle, ControlFlit>> ctrl_out;
    std::vector<std::pair<Cycle, FrCredit>> credits_out;
};

ControlFlit
makeCtrl(PacketId id, NodeId dest, std::vector<std::pair<int, Cycle>> es)
{
    ControlFlit cf;
    cf.packet = id;
    cf.head = true;
    cf.tail = true;
    cf.src = 3;
    cf.dest = dest;
    cf.vc = 0;
    for (const auto& [seq, arrival] : es)
        cf.addEntry(seq, arrival);
    return cf;
}

TEST(FrModes, CreditSlackDelaysBufferRelease)
{
    FrParams params;
    params.creditSlack = 1;  // plesiochronous
    FrModesFixture fx(params);
    fx.ctlin_[kWest]->push(0, makeCtrl(1, 5, {{0, 6}}));
    fx.run(0, 3);
    // Reservation at tick 2 for departure 7: the credit frees the
    // buffer from 8, one guard cycle after the departure.
    ASSERT_EQ(fx.credits_out.size(), 1u);
    EXPECT_EQ(fx.credits_out[0].second.freeFrom, 8);
}

TEST(FrModes, MesochronousReleasesAtDeparture)
{
    FrParams params;
    FrModesFixture fx(params);
    fx.ctlin_[kWest]->push(0, makeCtrl(2, 5, {{0, 6}}));
    fx.run(0, 3);
    ASSERT_EQ(fx.credits_out.size(), 1u);
    EXPECT_EQ(fx.credits_out[0].second.freeFrom, 7);
}

TEST(FrModes, AllOrNothingSchedulesGroupsAtomically)
{
    FrParams params;
    params.allOrNothing = true;
    params.flitsPerControl = 4;
    FrModesFixture fx(params);
    // A wide control flit leading 4 data flits arriving back to back.
    fx.ctlin_[kWest]->push(
        0, makeCtrl(3, 5, {{0, 6}, {1, 7}, {2, 8}, {3, 9}}));
    for (int s = 0; s < 4; ++s)
        fx.din_[kWest]->push(2 + s, fx.makeData(3, s, 5));
    fx.run(0, 20);
    // All four departed, on distinct cycles, in order.
    ASSERT_EQ(fx.data_out.size(), 4u);
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_GT(fx.data_out[i].first, fx.data_out[i - 1].first);
    // The control flit carried all four rewritten arrivals onward.
    ASSERT_EQ(fx.ctrl_out.size(), 1u);
    EXPECT_EQ(fx.ctrl_out[0].second.numEntries, 4);
}

TEST(FrModes, AllOrNothingStallsWholeGroupWhenOneEntryCannotFit)
{
    FrParams params;
    params.allOrNothing = true;
    params.flitsPerControl = 4;
    // Four buffers: with the wide-control reserve rule, not-yet-arrived
    // entries must leave one buffer spare, so the initial atomic
    // attempt fails (retries); once the data flits arrive and park, the
    // rescue path may take the last buffer and the whole group commits.
    params.dataBuffers = 4;
    FrModesFixture fx(params);
    fx.ctlin_[kWest]->push(
        0, makeCtrl(4, 5, {{0, 6}, {1, 7}, {2, 8}, {3, 9}}));
    for (int s = 0; s < 4; ++s)
        fx.din_[kWest]->push(2 + s, fx.makeData(4, s, 5));
    fx.run(0, 40);
    EXPECT_GT(fx.router_.schedulingRetries(), 0);
    // Per-flit would have moved some flits; atomic moved all or none —
    // and once feasible, all four went.
    EXPECT_EQ(fx.data_out.size(), 4u);
}

TEST(FrModes, WideControlRewritesEveryEntry)
{
    FrParams params;
    params.flitsPerControl = 4;
    FrModesFixture fx(params);
    fx.ctlin_[kWest]->push(
        0, makeCtrl(5, 5, {{0, 6}, {1, 7}, {2, 8}, {3, 9}}));
    fx.run(0, 4);
    ASSERT_EQ(fx.ctrl_out.size(), 1u);
    const ControlFlit& fwd = fx.ctrl_out[0].second;
    for (int e = 0; e < fwd.numEntries; ++e) {
        // Rewritten to next-hop arrival: departure + 4-cycle data wire.
        EXPECT_GE(fwd.entries[static_cast<std::size_t>(e)].arrival,
                  6 + 1 + 4);
        EXPECT_FALSE(fwd.entries[static_cast<std::size_t>(e)].scheduled);
    }
}

}  // namespace
}  // namespace frfc
