/**
 * @file
 * Reservation-protocol sanitizer tests: fault injection proving each
 * invariant fires with its specific diagnostic, kernel wake-contract
 * audits on both kernels, and clean paranoid runs over the fr6/vc8
 * presets that stay bit-identical to unvalidated runs.
 */

#include <gtest/gtest.h>

#include <memory>

#include "check/validator.hpp"
#include "frfc/fr_router.hpp"
#include "frfc/input_table.hpp"
#include "frfc/output_table.hpp"
#include "harness/presets.hpp"
#include "network/ejection_sink.hpp"
#include "network/fr_network.hpp"
#include "network/network.hpp"
#include "network/runner.hpp"
#include "proto/flit.hpp"
#include "proto/packet_registry.hpp"
#include "sim/kernel.hpp"

namespace frfc {
namespace {

Validator
recording()
{
    Validator v(ValidateLevel::kInvariants);
    v.setFailFast(false);
    return v;
}

// ---------------------------------------------------------------- //
// Output reservation table                                         //
// ---------------------------------------------------------------- //

TEST(ValidatorOutputTable, DoubleBookedCycleReports)
{
    Validator v = recording();
    OutputReservationTable table(16, 4, 1);
    table.setValidator(&v, "router1", kEast);
    table.reserve(5);
    table.reserve(5);
    ASSERT_TRUE(v.sawInvariant("res.double-book"));
    const Diagnostic& d = v.diagnostics().front();
    EXPECT_EQ(d.component, "router1");
    EXPECT_EQ(d.port, kEast);
    // The table refused the second booking instead of corrupting.
    EXPECT_TRUE(table.busyAt(5));
    EXPECT_EQ(table.reservedCount(), 1);
}

TEST(ValidatorOutputTable, CreditOverflowReports)
{
    Validator v = recording();
    OutputReservationTable table(16, 4, 1);
    table.setValidator(&v, "router2", kWest);
    table.credit(0);  // nothing outstanding: would exceed the pool
    ASSERT_TRUE(v.sawInvariant("credit.overflow"));
    EXPECT_EQ(v.diagnostics().front().component, "router2");
    // The bogus credit was refused wholesale.
    EXPECT_EQ(table.freeBuffersAt(0), 4);
}

TEST(ValidatorOutputTable, ConservationAuditCleanThroughTraffic)
{
    Validator v = recording();
    OutputReservationTable table(16, 4, 1);
    table.setValidator(&v, "router3", kEast);
    table.reserve(2);
    table.reserve(4);
    table.auditCreditConservation(0);
    table.credit(6);
    table.advance(3);
    table.auditCreditConservation(3);
    EXPECT_TRUE(v.clean());
    EXPECT_EQ(table.reservesTotal(), 2);
    EXPECT_EQ(table.creditsTotal(), 1);
}

// ---------------------------------------------------------------- //
// Input reservation table                                          //
// ---------------------------------------------------------------- //

TEST(ValidatorInputTable, OversubscribedDepartSlotReports)
{
    Validator v = recording();
    InputReservationTable table(16, 4, /*speedup=*/1);
    table.setValidator(&v, "router4", kNorth);
    table.recordReservation(0, 2, 5, kEast);
    table.recordReservation(0, 3, 5, kEast);  // same departure cycle
    ASSERT_TRUE(v.sawInvariant("res.slot-oversubscribed"));
    EXPECT_EQ(v.diagnostics().front().component, "router4");
    EXPECT_EQ(v.diagnostics().front().port, kNorth);
}

TEST(ValidatorInputTable, DoubleBookedArrivalReports)
{
    Validator v = recording();
    InputReservationTable table(16, 4, 1);
    table.setValidator(&v, "router5", kSouth);
    table.recordReservation(0, 2, 5, kEast);
    table.recordReservation(0, 2, 6, kEast);  // same arrival cycle
    ASSERT_TRUE(v.sawInvariant("res.double-book"));
    EXPECT_EQ(v.diagnostics().front().cycle, 0);
}

TEST(ValidatorInputTable, UnreservedArrivalReports)
{
    Validator v = recording();
    InputReservationTable table(16, /*buffers=*/1, 1);
    table.setValidator(&v, "router6", kWest);
    Flit flit;
    flit.packet = 7;
    flit.dest = 0;
    table.acceptFlit(0, flit);  // parks in the only buffer
    table.acceptFlit(1, flit);  // no buffer left: unaccounted flit
    ASSERT_TRUE(v.sawInvariant("data.unreserved-arrival"));
    EXPECT_EQ(v.diagnostics().front().component, "router6");
}

// ---------------------------------------------------------------- //
// Ejection sink                                                    //
// ---------------------------------------------------------------- //

TEST(ValidatorSink, MisroutedFlitReports)
{
    Validator v = recording();
    PacketRegistry registry;
    EjectionSink sink("sink", &registry);
    sink.setValidator(&v);
    Channel<Flit> ej0("ej0", 1);
    sink.addChannel(&ej0, 0);  // registered as destination node 0

    const PacketId id = registry.create(1, 1, 1, 0);
    Flit flit;
    flit.packet = id;
    flit.seq = 0;
    flit.packetLength = 1;
    flit.head = flit.tail = true;
    flit.src = 1;
    flit.dest = 1;  // ejected at node 0: misroute
    flit.created = 0;
    flit.injected = 0;
    flit.payload = Flit::expectedPayload(id, 0);
    ej0.push(0, flit);
    sink.tick(1);
    ASSERT_TRUE(v.sawInvariant("sink.misroute"));
    EXPECT_EQ(v.diagnostics().front().component, "sink");
}

// ---------------------------------------------------------------- //
// Credit-link ledgers and fail-fast behaviour                      //
// ---------------------------------------------------------------- //

TEST(ValidatorLedger, LostCreditMismatchReports)
{
    Validator v = recording();
    const int link = v.addCreditLink("frc:0->1");
    v.onCreditSent(link);
    v.onCreditSent(link);
    v.onCreditApplied(link);
    v.checkCreditLink(link, /*in_flight=*/1, 10);
    EXPECT_TRUE(v.clean());  // 2 sent - 1 applied == 1 in flight
    v.checkCreditLink(link, /*in_flight=*/0, 11);
    ASSERT_TRUE(v.sawInvariant("credit.conservation"));
    EXPECT_EQ(v.diagnostics().front().cycle, 11);
}

TEST(ValidatorDeath, FailFastPanicsWithDiagnostic)
{
    Validator v(ValidateLevel::kInvariants);
    EXPECT_DEATH(v.fail("res.double-book", 42, "router9", kEast, "x"),
                 "invariant violation");
}

// ---------------------------------------------------------------- //
// Kernel wake-contract audit (lying nextWake)                      //
// ---------------------------------------------------------------- //

/** Changes visible state every cycle but promises eternal sleep. */
class Liar : public Clocked
{
  public:
    Liar() : Clocked("liar") {}
    void tick(Cycle) override { ++count_; }
    Cycle nextWake(Cycle) const override { return kInvalidCycle; }
    std::uint64_t
    activityFingerprint() const override
    {
        return fingerprintMix(0, count_);
    }

  private:
    std::uint64_t count_ = 0;
};

/** Honest hot component keeping the event kernel executing cycles. */
class Pacer : public Clocked
{
  public:
    Pacer() : Clocked("pacer") {}
    void tick(Cycle) override {}
    Cycle nextWake(Cycle now) const override { return now + 1; }
};

TEST(ValidatorKernel, SteppedAuditCatchesLyingNextWake)
{
    Kernel kernel;
    Validator v(ValidateLevel::kParanoid);
    v.setFailFast(false);
    Liar liar;
    kernel.add(&liar);
    kernel.setValidator(&v);
    kernel.run(3);
    ASSERT_TRUE(v.sawInvariant("kernel.wake-contract"));
    EXPECT_EQ(v.diagnostics().front().component, "liar");
}

TEST(ValidatorKernel, EventShadowAuditCatchesLyingNextWake)
{
    Kernel kernel;
    kernel.setMode(KernelMode::kEvent);
    Validator v(ValidateLevel::kParanoid);
    v.setFailFast(false);
    Liar liar;
    Pacer pacer;
    kernel.add(&liar);
    kernel.add(&pacer);
    kernel.setValidator(&v);
    kernel.run(4);
    ASSERT_TRUE(v.sawInvariant("kernel.wake-contract"));
    EXPECT_EQ(v.diagnostics().front().component, "liar");
}

TEST(ValidatorKernel, SteppedAuditAcceptsHonestComponents)
{
    Kernel kernel;
    Validator v(ValidateLevel::kParanoid);
    v.setFailFast(false);
    Pacer pacer;
    kernel.add(&pacer);
    kernel.setValidator(&v);
    kernel.run(10);
    EXPECT_TRUE(v.clean());
}

// ---------------------------------------------------------------- //
// End-to-end fault injection: a dropped advance credit             //
// ---------------------------------------------------------------- //

TEST(ValidatorNetwork, DroppedAdvanceCreditBreaksLedger)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.3);
    cfg.set("sim.validate", 1);
    FrNetwork net(cfg);
    net.validator().setFailFast(false);

    const NodeId middle = net.topology().nodeAt(2, 2);
    for (PortId p = kEast; p <= kSouth; ++p)
        net.router(middle).testDropNextAdvanceCredit(p);
    net.kernel().run(4000);
    net.validateState(net.kernel().now());
    ASSERT_TRUE(net.validator().sawInvariant("credit.conservation"));
}

// ---------------------------------------------------------------- //
// Clean paranoid runs: fr6/vc8, both kernels, bit-identical        //
// ---------------------------------------------------------------- //

RunOptions
fastOpts()
{
    RunOptions opt;
    opt.samplePackets = 300;
    opt.minWarmup = 400;
    opt.maxWarmup = 1500;
    opt.maxCycles = 60000;
    return opt;
}

RunResult
runAtLevel(Config cfg, int validate, const char* kernel, bool* clean)
{
    cfg.set("sim.validate", validate);
    cfg.set("sim.kernel", kernel);
    auto net = makeNetwork(cfg);
    const RunResult result = runMeasurement(*net, fastOpts());
    if (clean != nullptr)
        *clean = net->validator().clean();
    return result;
}

void
expectCleanAndIdentical(Config cfg)
{
    for (const char* kernel : {"stepped", "event"}) {
        const RunResult base = runAtLevel(cfg, 0, kernel, nullptr);
        bool clean = false;
        const RunResult checked = runAtLevel(cfg, 2, kernel, &clean);
        EXPECT_TRUE(clean) << kernel;
        EXPECT_TRUE(base.bitIdentical(checked)) << kernel;
        EXPECT_TRUE(checked.complete) << kernel;
    }
}

TEST(ValidatorCleanRun, Fr6ParanoidBitIdenticalBothKernels)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.25);
    expectCleanAndIdentical(cfg);
}

TEST(ValidatorCleanRun, Vc8ParanoidBitIdenticalBothKernels)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.25);
    expectCleanAndIdentical(cfg);
}

}  // namespace
}  // namespace frfc
