/**
 * @file
 * Unit tests for the Config key/value store.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/config.hpp"

namespace frfc {
namespace {

TEST(Config, RoundTripsStrings)
{
    Config cfg;
    cfg.set("name", "mesh");
    EXPECT_TRUE(cfg.has("name"));
    EXPECT_EQ(cfg.getString("name"), "mesh");
}

TEST(Config, RoundTripsIntegers)
{
    Config cfg;
    cfg.set("x", 42);
    cfg.set("y", std::int64_t{-7});
    EXPECT_EQ(cfg.getInt("x"), 42);
    EXPECT_EQ(cfg.getInt("y"), -7);
}

TEST(Config, RoundTripsDoubles)
{
    Config cfg;
    cfg.set("rate", 0.625);
    EXPECT_DOUBLE_EQ(cfg.getDouble("rate"), 0.625);
}

TEST(Config, RoundTripsBooleans)
{
    Config cfg;
    cfg.set("flag", true);
    EXPECT_TRUE(cfg.getBool("flag"));
    cfg.set("flag", false);
    EXPECT_FALSE(cfg.getBool("flag"));
}

TEST(Config, ParsesBooleanSpellings)
{
    Config cfg;
    for (const char* yes : {"true", "1", "yes", "on"}) {
        cfg.set("k", yes);
        EXPECT_TRUE(cfg.getBool("k")) << yes;
    }
    for (const char* no : {"false", "0", "no", "off"}) {
        cfg.set("k", no);
        EXPECT_FALSE(cfg.getBool("k")) << no;
    }
}

TEST(Config, DefaultsApplyOnlyWhenAbsent)
{
    Config cfg;
    EXPECT_EQ(cfg.getInt("missing", 9), 9);
    cfg.set("missing", 3);
    EXPECT_EQ(cfg.getInt("missing", 9), 3);
}

TEST(Config, IntegerParsesHex)
{
    Config cfg;
    cfg.set("addr", "0x10");
    EXPECT_EQ(cfg.getInt("addr"), 16);
}

TEST(Config, ApplyArgsSplitsKeyValueTokens)
{
    Config cfg;
    const auto leftovers =
        cfg.applyArgs({"offered=0.7", "run", "seed=9", "--full"});
    ASSERT_EQ(leftovers.size(), 2u);
    EXPECT_EQ(leftovers[0], "run");
    EXPECT_EQ(leftovers[1], "--full");
    EXPECT_DOUBLE_EQ(cfg.getDouble("offered"), 0.7);
    EXPECT_EQ(cfg.getInt("seed"), 9);
}

TEST(Config, ApplyArgsTrimsWhitespace)
{
    Config cfg;
    cfg.applyArgs({"key = value "});
    EXPECT_EQ(cfg.getString("key"), "value");
}

TEST(Config, LoadsFileWithCommentsAndBlanks)
{
    const std::string path = ::testing::TempDir() + "frfc_cfg_test.cfg";
    {
        std::ofstream out(path);
        out << "# header comment\n"
            << "\n"
            << "size_x = 8   # trailing comment\n"
            << "scheme = fr\n";
    }
    Config cfg;
    cfg.loadFile(path);
    EXPECT_EQ(cfg.getInt("size_x"), 8);
    EXPECT_EQ(cfg.getString("scheme"), "fr");
    std::remove(path.c_str());
}

TEST(Config, KeysAreSorted)
{
    Config cfg;
    cfg.set("zeta", 1);
    cfg.set("alpha", 2);
    const auto keys = cfg.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "alpha");
    EXPECT_EQ(keys[1], "zeta");
}

TEST(Config, ToStringListsAllPairs)
{
    Config cfg;
    cfg.set("a", 1);
    cfg.set("b", "two");
    EXPECT_EQ(cfg.toString(), "a = 1\nb = two\n");
}

using ConfigDeath = ::testing::Test;

TEST(ConfigDeath, MissingKeyIsFatal)
{
    Config cfg;
    EXPECT_EXIT(cfg.getString("nope"), ::testing::ExitedWithCode(1),
                "missing config key");
}

TEST(ConfigDeath, MalformedIntegerIsFatal)
{
    Config cfg;
    cfg.set("x", "12abc");
    EXPECT_EXIT(cfg.getInt("x"), ::testing::ExitedWithCode(1),
                "not an integer");
}

TEST(ConfigDeath, MalformedBooleanIsFatal)
{
    Config cfg;
    cfg.set("b", "maybe");
    EXPECT_EXIT(cfg.getBool("b"), ::testing::ExitedWithCode(1),
                "not a boolean");
}

}  // namespace
}  // namespace frfc
