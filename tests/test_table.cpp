/**
 * @file
 * Unit tests for the text/CSV table emitters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace frfc {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable table;
    table.setHeader({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    // Header, separator, two rows.
    EXPECT_NE(out.find("name    value"), std::string::npos);
    EXPECT_NE(out.find("------"), std::string::npos);
    EXPECT_NE(out.find("longer  22"), std::string::npos);
}

TEST(TextTable, CsvUsesCommas)
{
    TextTable table;
    table.setHeader({"x", "y"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TextTable, HandlesRaggedRows)
{
    TextTable table;
    table.setHeader({"a"});
    table.addRow({"1", "2", "3"});
    std::ostringstream os;
    table.print(os);  // must not crash or misalign fatally
    EXPECT_NE(os.str().find("3"), std::string::npos);
}

TEST(TextTable, NumFormatsFixedPrecision)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::num(-1.5, 1), "-1.5");
}

TEST(TextTable, PercentFormatsFraction)
{
    EXPECT_EQ(TextTable::percent(0.7712, 1), "77.1%");
    EXPECT_EQ(TextTable::percent(1.0, 0), "100%");
}

TEST(TextTable, RowCountTracksRows)
{
    TextTable table;
    EXPECT_EQ(table.rowCount(), 0u);
    table.addRow({"x"});
    table.addRow({"y"});
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, EmptyHeaderOmitsSeparator)
{
    TextTable table;
    table.addRow({"only"});
    std::ostringstream os;
    table.print(os);
    EXPECT_EQ(os.str(), "only\n");
}

}  // namespace
}  // namespace frfc
