/**
 * @file
 * Golden regression tests: the simulator is bit-deterministic for a
 * given seed, so key end-to-end numbers are pinned exactly. If a code
 * change shifts any of these, it changed simulated behavior — either a
 * bug or an intentional model change that must update EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include "harness/presets.hpp"
#include "network/network.hpp"
#include "network/runner.hpp"

namespace frfc {
namespace {

RunOptions
goldenOptions()
{
    RunOptions opt;
    opt.samplePackets = 500;
    opt.minWarmup = 1000;
    opt.maxWarmup = 3000;
    opt.maxCycles = 60000;
    return opt;
}

RunResult
runGolden(const char* preset, double offered)
{
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    applyPreset(cfg, preset);
    cfg.set("workload.offered", offered);
    cfg.set("seed", 12345);
    return runExperiment(cfg, goldenOptions());
}

TEST(Golden, RunsAreExactlyReproducible)
{
    const RunResult a = runGolden("fr6", 0.5);
    const RunResult b = runGolden("fr6", 0.5);
    EXPECT_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.p99Latency, b.p99Latency);
    EXPECT_EQ(a.packetsDelivered, b.packetsDelivered);
}

TEST(Golden, CrossSchemeOrderingAtMidLoad)
{
    // These relationships — not the exact values — are the contract.
    const RunResult vc = runGolden("vc8", 0.5);
    const RunResult fr = runGolden("fr6", 0.5);
    ASSERT_TRUE(vc.complete);
    ASSERT_TRUE(fr.complete);
    EXPECT_LT(fr.avgLatency, vc.avgLatency);
    EXPECT_LT(fr.p99Latency, vc.p99Latency);
    EXPECT_NEAR(fr.acceptedFraction, vc.acceptedFraction, 0.05);
}

TEST(Golden, PercentilesBracketTheMean)
{
    const RunResult r = runGolden("fr6", 0.5);
    ASSERT_TRUE(r.complete);
    EXPECT_LE(r.minLatency, r.p50Latency);
    EXPECT_LE(r.p50Latency, r.p99Latency);
    EXPECT_LE(r.p99Latency, r.maxLatency + 1.0);
    EXPECT_GT(r.p99Latency, r.avgLatency);
    EXPECT_NEAR(r.p50Latency, r.avgLatency, r.avgLatency * 0.4);
}

TEST(Golden, ZeroLoadBaseLatencyIsPinned)
{
    // 4x4 mesh, fast control. These values define our pipeline model;
    // see EXPERIMENTS.md "calibration note" before changing them.
    const RunResult vc = runGolden("vc8", 0.02);
    const RunResult fr = runGolden("fr6", 0.02);
    EXPECT_NEAR(vc.avgLatency, 26.5, 1.5);
    EXPECT_NEAR(fr.avgLatency, 22.1, 1.5);
}

}  // namespace
}  // namespace frfc
