/**
 * @file
 * Micro-tests of a single flit-reservation router: control routing and
 * forwarding, data steering by reservation, advance credits, bypass,
 * and the schedule list.
 */

#include <gtest/gtest.h>

#include <memory>

#include "frfc/fr_router.hpp"
#include "proto/flit.hpp"
#include "routing/routing.hpp"
#include "sim/channel.hpp"
#include "topology/mesh.hpp"

namespace frfc {
namespace {

/** Center router of a 3x3 mesh, every port hand-wired. */
class FrRouterFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        mesh = std::make_unique<Mesh2D>(3, 3);
        routing = std::make_unique<DimensionOrderRouting>(*mesh, true);
        params.dataBuffers = 6;
        params.ctrlVcs = 2;
        params.ctrlVcDepth = 3;
        params.horizon = 32;
        params.ctrlWidth = 2;
        params.dataLinkLatency = 4;
        params.ctrlLinkLatency = 1;
        router = std::make_unique<FrRouter>("r4", 4, *routing, params,
                                            Rng(1));
        for (PortId p = 0; p < kNumPorts; ++p) {
            din[p] = std::make_unique<Channel<Flit>>(
                "din" + std::to_string(p), p == kLocal ? 1 : 4);
            dout[p] = std::make_unique<Channel<Flit>>(
                "dout" + std::to_string(p), p == kLocal ? 1 : 4);
            ctlin[p] = std::make_unique<Channel<ControlFlit>>(
                "cin" + std::to_string(p), 1, 2);
            ctlout[p] = std::make_unique<Channel<ControlFlit>>(
                "cout" + std::to_string(p), 1, 2);
            frcin[p] = std::make_unique<Channel<FrCredit>>(
                "fin" + std::to_string(p), 1, 4);
            frcout[p] = std::make_unique<Channel<FrCredit>>(
                "fout" + std::to_string(p), 1, 4);
            ccin[p] = std::make_unique<Channel<Credit>>(
                "ccin" + std::to_string(p), 1, 2);
            ccout[p] = std::make_unique<Channel<Credit>>(
                "ccout" + std::to_string(p), 1, 2);
            router->connectDataIn(p, din[p].get());
            router->connectDataOut(p, dout[p].get());
            router->connectCtrlIn(p, ctlin[p].get());
            if (p != kLocal)
                router->connectCtrlOut(p, ctlout[p].get());
            router->connectFrCreditIn(p, frcin[p].get());
            router->connectFrCreditOut(p, frcout[p].get());
            router->connectCtrlCreditIn(p, ccin[p].get());
            router->connectCtrlCreditOut(p, ccout[p].get());
        }
    }

    ControlFlit
    makeCtrl(PacketId id, NodeId dest, int seq, Cycle arrival)
    {
        ControlFlit cf;
        cf.packet = id;
        cf.head = seq == 0;
        cf.tail = true;  // single-control-flit packets in these tests
        cf.src = 3;
        cf.dest = dest;
        cf.vc = 0;
        cf.created = 0;
        cf.addEntry(seq, arrival);
        return cf;
    }

    Flit
    makeData(PacketId id, int seq, NodeId dest)
    {
        Flit f;
        f.packet = id;
        f.seq = seq;
        f.packetLength = 1;
        f.head = f.tail = true;
        f.src = 3;
        f.dest = dest;
        f.payload = Flit::expectedPayload(id, seq);
        return f;
    }

    /** Tick router and return data flits leaving via @p port at t+L. */
    void
    run(Cycle from, Cycle to)
    {
        for (Cycle t = from; t <= to; ++t)
            router->tick(t);
    }

    std::unique_ptr<Mesh2D> mesh;
    std::unique_ptr<DimensionOrderRouting> routing;
    FrParams params;
    std::unique_ptr<FrRouter> router;
    std::unique_ptr<Channel<Flit>> din[kNumPorts];
    std::unique_ptr<Channel<Flit>> dout[kNumPorts];
    std::unique_ptr<Channel<ControlFlit>> ctlin[kNumPorts];
    std::unique_ptr<Channel<ControlFlit>> ctlout[kNumPorts];
    std::unique_ptr<Channel<FrCredit>> frcin[kNumPorts];
    std::unique_ptr<Channel<FrCredit>> frcout[kNumPorts];
    std::unique_ptr<Channel<Credit>> ccin[kNumPorts];
    std::unique_ptr<Channel<Credit>> ccout[kNumPorts];
};

TEST_F(FrRouterFixture, ControlFlitIsRoutedAndForwarded)
{
    // Control flit West -> East (dest node 5), leading a data flit that
    // will arrive at cycle 6.
    ctlin[kWest]->push(0, makeCtrl(1, 5, 0, 6));
    run(0, 3);
    // Arrives tick 1, processed tick 2, on the wire during cycle 3.
    auto fwd = ctlout[kEast]->drain(3);
    ASSERT_EQ(fwd.size(), 1u);
    EXPECT_EQ(fwd[0].packet, 1);
    // The arrival entry was rewritten to t_d + t_p for the next hop.
    ASSERT_EQ(fwd[0].numEntries, 1);
    EXPECT_GT(fwd[0].entries[0].arrival, 6);
    EXPECT_EQ(router->controlFlitsForwarded(), 1);
}

TEST_F(FrRouterFixture, DataFollowsTheReservation)
{
    ctlin[kWest]->push(0, makeCtrl(2, 5, 0, 6));
    // The data flit is pushed so it arrives exactly at cycle 6.
    din[kWest]->push(2, makeData(2, 0, 5));
    run(0, 12);
    // Control processed at tick 2: earliest departure is 7 (> arrival
    // 6), so the flit is on the East wire during 7, arriving at 11.
    int seen = 0;
    for (Cycle t = 3; t <= 13; ++t) {
        for (const Flit& f : dout[kEast]->drain(t)) {
            EXPECT_EQ(f.packet, 2);
            EXPECT_EQ(t, 11);
            ++seen;
        }
    }
    EXPECT_EQ(seen, 1);
    EXPECT_EQ(router->dataFlitsForwarded(), 1);
}

TEST_F(FrRouterFixture, MinimumResidencyCountsAsBypass)
{
    ctlin[kWest]->push(0, makeCtrl(3, 5, 0, 6));
    din[kWest]->push(2, makeData(3, 0, 5));
    run(0, 12);
    EXPECT_EQ(router->inputTable(kWest).bypasses(), 1);
}

TEST_F(FrRouterFixture, AdvanceCreditCarriesDepartureTime)
{
    ctlin[kWest]->push(0, makeCtrl(4, 5, 0, 6));
    run(0, 2);  // reservation happens at tick 2
    auto credits = frcout[kWest]->drain(3);
    ASSERT_EQ(credits.size(), 1u);
    EXPECT_EQ(credits[0].freeFrom, 7);  // buffer free from departure
}

TEST_F(FrRouterFixture, ControlCreditFreesUpstreamSlot)
{
    ctlin[kWest]->push(0, makeCtrl(5, 5, 0, 6));
    run(0, 2);
    auto credits = ccout[kWest]->drain(3);
    ASSERT_EQ(credits.size(), 1u);
    EXPECT_EQ(credits[0].vc, 0);
}

TEST_F(FrRouterFixture, DestinationSchedulesEjection)
{
    // Destination is this node (4): data ejects through the local port.
    ctlin[kWest]->push(0, makeCtrl(6, 4, 0, 6));
    din[kWest]->push(2, makeData(6, 0, 4));
    run(0, 12);
    int ejected = 0;
    for (Cycle t = 3; t <= 13; ++t)
        ejected += static_cast<int>(dout[kLocal]->drain(t).size());
    EXPECT_EQ(ejected, 1);
    // Control lead at the destination was recorded.
    EXPECT_EQ(router->controlLeadAtDestination().count(), 1);
    EXPECT_DOUBLE_EQ(router->controlLeadAtDestination().mean(), 4.0);
}

TEST_F(FrRouterFixture, EarlyDataParksOnScheduleList)
{
    // Data arrives at cycle 3; its control flit only shows up at 6.
    din[kWest]->push(-1, makeData(7, 0, 5));
    ctlin[kWest]->push(5, makeCtrl(7, 5, 0, 3));
    run(0, 20);
    EXPECT_EQ(router->inputTable(kWest).parkedTotal(), 1);
    int seen = 0;
    for (Cycle t = 3; t <= 21; ++t)
        seen += static_cast<int>(dout[kEast]->drain(t).size());
    EXPECT_EQ(seen, 1);
    EXPECT_EQ(router->inputTable(kWest).parkedCount(), 0);
}

TEST_F(FrRouterFixture, ChannelContentionSerializesDepartures)
{
    // Two flits from different inputs, both East, arriving at cycle 6:
    // the output reservation table must give them distinct cycles.
    ctlin[kWest]->push(0, makeCtrl(8, 5, 0, 6));
    ctlin[kNorth]->push(0, makeCtrl(9, 5, 0, 6));
    din[kWest]->push(2, makeData(8, 0, 5));
    din[kNorth]->push(2, makeData(9, 0, 5));
    run(0, 14);
    std::vector<Cycle> departures;
    for (Cycle t = 3; t <= 15; ++t) {
        for (const Flit& f : dout[kEast]->drain(t)) {
            (void)f;
            departures.push_back(t - 4);  // wire time minus latency
        }
    }
    ASSERT_EQ(departures.size(), 2u);
    EXPECT_NE(departures[0], departures[1]);
}

TEST_F(FrRouterFixture, SchedulingConsumesDownstreamBuffers)
{
    // Six reservations exhaust the 6 downstream buffers; the seventh
    // control flit stalls until a data credit arrives. The downstream
    // *control* plane is emulated by echoing a control credit for every
    // forwarded control flit.
    auto run_with_ctrl_echo = [this](Cycle from, Cycle to) {
        for (Cycle t = from; t <= to; ++t) {
            if (t % 2 == 0 && t < 14) {
                const int i = static_cast<int>(t) / 2;
                ctlin[kWest]->push(t, makeCtrl(20 + i, 5, 0, t + 4));
                din[kWest]->push(t, makeData(20 + i, 0, 5));
            }
            router->tick(t);
            for (const ControlFlit& cf : ctlout[kEast]->drain(t))
                ccin[kEast]->push(t, Credit{cf.vc});
            for (PortId p = 0; p < kNumPorts; ++p) {
                dout[p]->drain(t);
                frcout[p]->drain(t);
                ccout[p]->drain(t);
            }
        }
    };
    run_with_ctrl_echo(0, 30);
    EXPECT_EQ(router->controlFlitsForwarded(), 6);
    EXPECT_GT(router->schedulingRetries(), 0);

    // A downstream data credit (buffer free from cycle 40) unblocks it.
    frcin[kEast]->push(30, FrCredit{40});
    run_with_ctrl_echo(31, 45);
    EXPECT_EQ(router->controlFlitsForwarded(), 7);
}

}  // namespace
}  // namespace frfc
