/**
 * @file
 * Unit, statistical, and property tests for traffic patterns and
 * injection processes.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "topology/mesh.hpp"
#include "traffic/injection.hpp"
#include "traffic/pattern.hpp"

namespace frfc {
namespace {

TEST(Uniform, CoversAllDestinationsEvenly)
{
    Mesh2D mesh(4, 4);
    UniformPattern pattern(mesh);
    Rng rng(1);
    std::map<NodeId, int> counts;
    const int draws = 15000;
    for (int i = 0; i < draws; ++i)
        ++counts[pattern.dest(0, rng)];
    EXPECT_EQ(counts.count(0), 0u);  // never targets the source
    EXPECT_EQ(counts.size(), 15u);
    for (const auto& [node, count] : counts)
        EXPECT_NEAR(count, draws / 15, draws / 15 * 0.25) << node;
}

TEST(Transpose, SwapsCoordinates)
{
    Mesh2D mesh(4, 4);
    TransposePattern pattern(mesh);
    Rng rng(1);
    EXPECT_EQ(pattern.dest(mesh.nodeAt(1, 3), rng), mesh.nodeAt(3, 1));
}

TEST(Transpose, DiagonalFallsBackOffDiagonal)
{
    Mesh2D mesh(4, 4);
    TransposePattern pattern(mesh);
    Rng rng(1);
    const NodeId diag = mesh.nodeAt(2, 2);
    for (int i = 0; i < 50; ++i)
        EXPECT_NE(pattern.dest(diag, rng), diag);
}

TEST(BitComplement, ComplementsFlatId)
{
    Mesh2D mesh(4, 4);
    BitComplementPattern pattern(mesh);
    Rng rng(1);
    EXPECT_EQ(pattern.dest(0, rng), 15);
    EXPECT_EQ(pattern.dest(5, rng), 10);
}

TEST(BitReverse, ReversesBits)
{
    Mesh2D mesh(4, 4);  // 16 nodes, 4 bits
    BitReversePattern pattern(mesh);
    Rng rng(1);
    EXPECT_EQ(pattern.dest(0b0001, rng), 0b1000);
    EXPECT_EQ(pattern.dest(0b0011, rng), 0b1100);
}

TEST(Shuffle, RotatesLeft)
{
    Mesh2D mesh(4, 4);
    ShufflePattern pattern(mesh);
    Rng rng(1);
    EXPECT_EQ(pattern.dest(0b0011, rng), 0b0110);
    EXPECT_EQ(pattern.dest(0b1001, rng), 0b0011);
}

TEST(Neighbor, StepsEastWithWrap)
{
    Mesh2D mesh(4, 4);
    NeighborPattern pattern(mesh);
    Rng rng(1);
    EXPECT_EQ(pattern.dest(mesh.nodeAt(1, 2), rng), mesh.nodeAt(2, 2));
    EXPECT_EQ(pattern.dest(mesh.nodeAt(3, 2), rng), mesh.nodeAt(0, 2));
}

TEST(Tornado, MovesHalfwayMinusOne)
{
    Mesh2D mesh(8, 8);
    TornadoPattern pattern(mesh);
    Rng rng(1);
    EXPECT_EQ(pattern.dest(mesh.nodeAt(0, 0), rng), mesh.nodeAt(3, 3));
}

TEST(Hotspot, BiasesTowardHotNode)
{
    Mesh2D mesh(4, 4);
    HotspotPattern pattern(mesh, {5}, 0.5);
    Rng rng(1);
    int hits = 0;
    const int draws = 10000;
    for (int i = 0; i < draws; ++i)
        hits += pattern.dest(0, rng) == 5 ? 1 : 0;
    // ~50% direct plus ~1/15 of the uniform remainder.
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.53, 0.05);
}

TEST(PatternFactory, BuildsEveryKind)
{
    Mesh2D mesh(4, 4);
    for (const char* kind :
         {"uniform", "transpose", "bitcomp", "bitrev", "shuffle",
          "tornado", "neighbor", "hotspot"}) {
        Config cfg;
        cfg.set("traffic", kind);
        EXPECT_NE(makePattern(cfg, mesh), nullptr) << kind;
    }
}

TEST(PatternFactoryDeath, RejectsUnknownKind)
{
    Mesh2D mesh(4, 4);
    Config cfg;
    cfg.set("traffic", "nemesis");
    EXPECT_EXIT(makePattern(cfg, mesh), ::testing::ExitedWithCode(1),
                "unknown traffic");
}

/** Every pattern must avoid self-traffic — property sweep. */
class PatternProperty : public ::testing::TestWithParam<const char*>
{
};

TEST_P(PatternProperty, NeverTargetsSource)
{
    Mesh2D mesh(4, 4);
    Config cfg;
    cfg.set("traffic", GetParam());
    const auto pattern = makePattern(cfg, mesh);
    Rng rng(3);
    for (NodeId src = 0; src < mesh.numNodes(); ++src) {
        for (int i = 0; i < 20; ++i) {
            const NodeId dest = pattern->dest(src, rng);
            EXPECT_NE(dest, src) << GetParam() << " src " << src;
            EXPECT_GE(dest, 0);
            EXPECT_LT(dest, mesh.numNodes());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, PatternProperty,
                         ::testing::Values("uniform", "transpose",
                                           "bitcomp", "bitrev", "shuffle",
                                           "tornado", "neighbor",
                                           "hotspot"));

TEST(Bernoulli, MatchesRateStatistically)
{
    BernoulliInjection inj(0.25);
    Rng rng(7);
    int fired = 0;
    const int cycles = 100000;
    for (int i = 0; i < cycles; ++i)
        fired += inj.inject(rng) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(fired) / cycles, 0.25, 0.01);
}

TEST(Periodic, MatchesRateExactly)
{
    PeriodicInjection inj(0.25);
    Rng rng(7);
    int fired = 0;
    for (int i = 0; i < 1000; ++i)
        fired += inj.inject(rng) ? 1 : 0;
    EXPECT_EQ(fired, 250);
}

TEST(Periodic, SpacesInjectionsEvenly)
{
    PeriodicInjection inj(0.5);
    Rng rng(7);
    int consecutive = 0;
    bool prev = false;
    for (int i = 0; i < 100; ++i) {
        const bool now = inj.inject(rng);
        if (now && prev)
            ++consecutive;
        prev = now;
    }
    EXPECT_EQ(consecutive, 0);  // rate 0.5 alternates
}

TEST(InjectionFactory, ConvertsFlitsToPackets)
{
    Config cfg;
    const auto inj = makeInjection(cfg, 0.5, 5);
    EXPECT_DOUBLE_EQ(inj->packetRate(), 0.1);
}

TEST(InjectionFactoryDeath, RejectsRateAboveOne)
{
    Config cfg;
    EXPECT_EXIT(makeInjection(cfg, 6.0, 5), ::testing::ExitedWithCode(1),
                "outside");
}

}  // namespace
}  // namespace frfc
