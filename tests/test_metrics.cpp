/**
 * @file
 * MetricRegistry: registration semantics (create-or-get, stable
 * references, kind mismatch is fatal), snapshot flattening, and the
 * metric paths the networks register end to end.
 */

#include <gtest/gtest.h>

#include "harness/presets.hpp"
#include "harness/sweep.hpp"
#include "network/fr_network.hpp"
#include "network/vc_network.hpp"
#include "stats/metrics.hpp"

namespace frfc {
namespace {

TEST(MetricRegistry, CounterCreateOrGetReturnsSameInstrument)
{
    MetricRegistry reg;
    Counter& a = reg.counter("router.0.bypasses");
    Counter& b = reg.counter("router.0.bypasses");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.size(), 1u);

    a.inc();
    a.add(4);
    EXPECT_EQ(b.value(), 5);
}

TEST(MetricRegistry, RegisteredPathsAreSortedAndQueryable)
{
    MetricRegistry reg;
    reg.counter("z.last");
    reg.gauge("a.first");
    reg.counter("m.middle");

    EXPECT_TRUE(reg.has("a.first"));
    EXPECT_FALSE(reg.has("a.missing"));
    const std::vector<std::string> expect{"a.first", "m.middle",
                                          "z.last"};
    EXPECT_EQ(reg.paths(), expect);
}

TEST(MetricRegistry, KindMismatchIsFatal)
{
    MetricRegistry reg;
    reg.counter("router.0.bypasses");
    EXPECT_EXIT(reg.gauge("router.0.bypasses"),
                ::testing::ExitedWithCode(1), "router.0.bypasses");
}

TEST(MetricRegistry, SnapshotFlattensEveryInstrumentKind)
{
    MetricRegistry reg;
    reg.counter("events").add(7);
    reg.gauge("level").set(2.5);
    TimeAverage& ta = reg.timeAverage("occupancy");
    ta.update(0, 1.0);
    ta.update(10, 3.0);  // level 1.0 held for cycles [0, 10)
    reg.finishTimeAverages(20);  // level 3.0 held for [10, 20)

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("events"), 7.0);
    EXPECT_EQ(snap.value("level"), 2.5);
    EXPECT_DOUBLE_EQ(snap.value("occupancy"), 2.0);
}

TEST(MetricRegistry, SnapshotExpandsHistogramsIntoQuantileKeys)
{
    MetricRegistry reg;
    Histogram& h = reg.histogram("latency", 0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("latency.count"), 100.0);
    EXPECT_NEAR(snap.value("latency.p50"), 50.0, 1.5);
    EXPECT_NEAR(snap.value("latency.p95"), 95.0, 1.5);
    EXPECT_NEAR(snap.value("latency.p99"), 99.0, 1.5);
}

TEST(MetricsSnapshot, SamplesAreSortedAndComparable)
{
    MetricRegistry reg;
    reg.counter("b").inc();
    reg.counter("a").add(2);
    const MetricsSnapshot snap = reg.snapshot();

    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap.samples()[0].path, "a");
    EXPECT_EQ(snap.samples()[1].path, "b");

    MetricRegistry reg2;
    reg2.counter("a").add(2);
    reg2.counter("b").inc();
    EXPECT_TRUE(snap == reg2.snapshot());

    reg2.counter("b").inc();
    EXPECT_FALSE(snap == reg2.snapshot());
}

TEST(MetricsSnapshot, SumMatchingAddsSuffixFamilies)
{
    MetricRegistry reg;
    reg.counter("router.0.out.1.data_flits").add(3);
    reg.counter("router.5.out.2.data_flits").add(4);
    reg.counter("router.5.out.2.data_flits_other").add(100);
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.sumMatching("data_flits"), 7.0);
}

/** The VC network registers the documented per-component paths. */
TEST(NetworkMetrics, VcNetworkRegistersDocumentedPaths)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("workload.offered", 0.3);
    VcNetwork net(cfg);
    net.kernel().run(2000);
    net.finalizeMetrics();
    const MetricsSnapshot snap = net.metrics().snapshot();

    EXPECT_TRUE(snap.has("router.0.vc_alloc_failures"));
    EXPECT_TRUE(snap.has("router.0.credit_stalls"));
    EXPECT_TRUE(snap.has("router.0.out.0.data_flits"));
    EXPECT_TRUE(snap.has("router.63.in.4.occupancy"));
    EXPECT_TRUE(snap.has("source.0.packets_generated"));
    EXPECT_TRUE(snap.has("source.0.flits_injected"));
    EXPECT_TRUE(snap.has("sink.flits_ejected"));

    // The network-wide ejection count agrees with the packet registry.
    EXPECT_EQ(snap.value("sink.flits_ejected"),
              static_cast<double>(net.registry().flitsDelivered()));
    EXPECT_GT(snap.value("sink.flits_ejected"), 0.0);
}

/** The FR network adds reservation-specific instrument families. */
TEST(NetworkMetrics, FrNetworkRegistersReservationPaths)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("workload.offered", 0.3);
    FrNetwork net(cfg);
    net.kernel().run(2000);
    net.finalizeMetrics();
    const MetricsSnapshot snap = net.metrics().snapshot();

    EXPECT_TRUE(snap.has("router.0.data.forwarded"));
    EXPECT_TRUE(snap.has("router.0.ctrl.forwarded"));
    EXPECT_TRUE(snap.has("router.0.advance_credits"));
    EXPECT_TRUE(snap.has("router.0.out.0.reservations"));
    EXPECT_TRUE(snap.has("router.0.out.0.reservations_denied"));
    EXPECT_TRUE(snap.has("router.0.in.0.bypasses"));
    EXPECT_TRUE(snap.has("router.0.in.0.occupancy"));
    EXPECT_TRUE(snap.has("source.0.flits_injected"));

    // Reservations were actually made under load.
    EXPECT_GT(snap.sumMatching("reservations"), 0.0);
    EXPECT_GT(snap.value("sink.flits_ejected"), 0.0);
}

/** runExperiment snapshots metrics into the RunResult by default and
 *  skips them under out.metrics=none. */
TEST(NetworkMetrics, RunExperimentCollectsSnapshotPerOptions)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.3);

    RunOptions opt;
    opt.samplePackets = 200;
    opt.minWarmup = 500;
    opt.maxWarmup = 1500;
    opt.maxCycles = 30000;

    const RunResult with = runExperiment(cfg, opt);
    EXPECT_FALSE(with.metrics.empty());
    EXPECT_TRUE(with.metrics.has("sink.flits_ejected"));

    opt.outMetrics = "none";
    const RunResult without = runExperiment(cfg, opt);
    EXPECT_TRUE(without.metrics.empty());
}

}  // namespace
}  // namespace frfc
