/**
 * @file
 * Unit and parameterized property tests for mesh and torus topologies.
 */

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "topology/mesh.hpp"
#include "topology/topology.hpp"
#include "topology/torus.hpp"

namespace frfc {
namespace {

TEST(Mesh, CoordinateRoundTrip)
{
    Mesh2D mesh(8, 8);
    for (int x = 0; x < 8; ++x) {
        for (int y = 0; y < 8; ++y) {
            const NodeId node = mesh.nodeAt(x, y);
            EXPECT_EQ(mesh.xOf(node), x);
            EXPECT_EQ(mesh.yOf(node), y);
        }
    }
}

TEST(Mesh, EdgePortsUnwired)
{
    Mesh2D mesh(4, 4);
    EXPECT_EQ(mesh.neighbor(mesh.nodeAt(0, 0), kWest), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(mesh.nodeAt(0, 0), kNorth), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(mesh.nodeAt(3, 3), kEast), kInvalidNode);
    EXPECT_EQ(mesh.neighbor(mesh.nodeAt(3, 3), kSouth), kInvalidNode);
}

TEST(Mesh, InteriorNeighbors)
{
    Mesh2D mesh(4, 4);
    const NodeId node = mesh.nodeAt(1, 1);
    EXPECT_EQ(mesh.neighbor(node, kEast), mesh.nodeAt(2, 1));
    EXPECT_EQ(mesh.neighbor(node, kWest), mesh.nodeAt(0, 1));
    EXPECT_EQ(mesh.neighbor(node, kNorth), mesh.nodeAt(1, 0));
    EXPECT_EQ(mesh.neighbor(node, kSouth), mesh.nodeAt(1, 2));
    EXPECT_EQ(mesh.neighbor(node, kLocal), node);
}

TEST(Mesh, HopDistanceIsManhattan)
{
    Mesh2D mesh(8, 8);
    EXPECT_EQ(mesh.hopDistance(mesh.nodeAt(0, 0), mesh.nodeAt(7, 7)), 14);
    EXPECT_EQ(mesh.hopDistance(mesh.nodeAt(3, 2), mesh.nodeAt(1, 5)), 5);
    EXPECT_EQ(mesh.hopDistance(5, 5), 0);
}

TEST(Mesh, CapacityMatchesPaperNormalization)
{
    // 100% capacity on the paper's 8x8 mesh is 0.5 flits/node/cycle.
    Mesh2D mesh(8, 8);
    EXPECT_DOUBLE_EQ(mesh.uniformCapacity(), 0.5);
}

TEST(Mesh, AverageUniformHopsMatchesClosedForm)
{
    // E[hops] excluding self = 2 * (k^2 - 1) / (3k) * k^2 / (k^2 - 1).
    Mesh2D mesh(8, 8);
    const double expected = 2.0 * 63.0 / 24.0 * 64.0 / 63.0;
    EXPECT_NEAR(mesh.averageUniformHops(), expected, 1e-9);
}

TEST(Torus, WraparoundNeighbors)
{
    Torus2D torus(4, 4);
    EXPECT_EQ(torus.neighbor(torus.nodeAt(0, 0), kWest),
              torus.nodeAt(3, 0));
    EXPECT_EQ(torus.neighbor(torus.nodeAt(3, 0), kEast),
              torus.nodeAt(0, 0));
    EXPECT_EQ(torus.neighbor(torus.nodeAt(0, 0), kNorth),
              torus.nodeAt(0, 3));
    EXPECT_EQ(torus.neighbor(torus.nodeAt(0, 3), kSouth),
              torus.nodeAt(0, 0));
}

TEST(Torus, HopDistanceTakesShortWay)
{
    Torus2D torus(8, 8);
    EXPECT_EQ(torus.hopDistance(torus.nodeAt(0, 0), torus.nodeAt(7, 0)),
              1);
    EXPECT_EQ(torus.hopDistance(torus.nodeAt(0, 0), torus.nodeAt(4, 4)),
              8);
}

TEST(Torus, CapacityDoublesMesh)
{
    Torus2D torus(8, 8);
    Mesh2D mesh(8, 8);
    EXPECT_DOUBLE_EQ(torus.uniformCapacity(),
                     2.0 * mesh.uniformCapacity());
}

TEST(TopologyFactory, BuildsFromConfig)
{
    Config cfg;
    cfg.set("topology", "torus");
    cfg.set("size_x", 4);
    cfg.set("size_y", 6);
    const auto topo = makeTopology(cfg);
    EXPECT_EQ(topo->numNodes(), 24);
    EXPECT_EQ(topo->describe(), "4x6 torus");
}

TEST(TopologyFactory, DefaultsToEightByEightMesh)
{
    Config cfg;
    const auto topo = makeTopology(cfg);
    EXPECT_EQ(topo->numNodes(), 64);
    EXPECT_EQ(topo->describe(), "8x8 mesh");
}

TEST(TopologyFactoryDeath, RejectsUnknownKind)
{
    Config cfg;
    cfg.set("topology", "hypercube");
    EXPECT_EXIT(makeTopology(cfg), ::testing::ExitedWithCode(1),
                "unknown topology");
}

/** Property sweep across sizes: neighbor relations are symmetric. */
class TopologyProperty
    : public ::testing::TestWithParam<std::tuple<const char*, int, int>>
{
};

TEST_P(TopologyProperty, NeighborsAreMutual)
{
    const auto [kind, sx, sy] = GetParam();
    Config cfg;
    cfg.set("topology", kind);
    cfg.set("size_x", sx);
    cfg.set("size_y", sy);
    const auto topo = makeTopology(cfg);
    const PortId opposites[] = {kWest, kEast, kSouth, kNorth};
    for (NodeId node = 0; node < topo->numNodes(); ++node) {
        for (PortId port = kEast; port <= kSouth; ++port) {
            const NodeId peer = topo->neighbor(node, port);
            if (peer == kInvalidNode)
                continue;
            EXPECT_EQ(topo->neighbor(peer, opposites[port]), node)
                << kind << " " << sx << "x" << sy << " node " << node
                << " port " << port;
        }
    }
}

TEST_P(TopologyProperty, HopDistanceIsAMetric)
{
    const auto [kind, sx, sy] = GetParam();
    Config cfg;
    cfg.set("topology", kind);
    cfg.set("size_x", sx);
    cfg.set("size_y", sy);
    const auto topo = makeTopology(cfg);
    const int n = topo->numNodes();
    for (NodeId a = 0; a < n; ++a) {
        EXPECT_EQ(topo->hopDistance(a, a), 0);
        for (NodeId b = 0; b < n; ++b) {
            EXPECT_EQ(topo->hopDistance(a, b), topo->hopDistance(b, a));
            if (a != b) {
                EXPECT_GE(topo->hopDistance(a, b), 1);
            }
        }
    }
}

TEST_P(TopologyProperty, NeighborsAreOneHopApart)
{
    const auto [kind, sx, sy] = GetParam();
    Config cfg;
    cfg.set("topology", kind);
    cfg.set("size_x", sx);
    cfg.set("size_y", sy);
    const auto topo = makeTopology(cfg);
    for (NodeId node = 0; node < topo->numNodes(); ++node) {
        for (PortId port = kEast; port <= kSouth; ++port) {
            const NodeId peer = topo->neighbor(node, port);
            if (peer == kInvalidNode || peer == node)
                continue;
            EXPECT_EQ(topo->hopDistance(node, peer), 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopologyProperty,
    ::testing::Values(std::make_tuple("mesh", 2, 2),
                      std::make_tuple("mesh", 4, 4),
                      std::make_tuple("mesh", 8, 8),
                      std::make_tuple("mesh", 3, 5),
                      std::make_tuple("torus", 4, 4),
                      std::make_tuple("torus", 8, 8),
                      std::make_tuple("torus", 3, 5)));

}  // namespace
}  // namespace frfc
