/**
 * @file
 * Unit tests for experiment presets and sweep plumbing.
 */

#include <gtest/gtest.h>

#include "harness/presets.hpp"
#include "harness/sweep.hpp"

namespace frfc {
namespace {

TEST(Presets, BaseConfigIsThePaperNetwork)
{
    const Config cfg = baseConfig();
    EXPECT_EQ(cfg.getString("topology"), "mesh");
    EXPECT_EQ(cfg.getInt("size_x"), 8);
    EXPECT_EQ(cfg.getInt("size_y"), 8);
    EXPECT_EQ(cfg.getString("traffic"), "uniform");
    EXPECT_EQ(cfg.getInt("workload.packet_length"), 5);
    // Fast control wires by default: data 4x slower than control.
    EXPECT_EQ(cfg.getInt("data_link_latency"), 4);
    EXPECT_EQ(cfg.getInt("ctrl_link_latency"), 1);
    EXPECT_EQ(cfg.getInt("credit_link_latency"), 1);
}

TEST(Presets, VcConfigurationsMatchTable1)
{
    struct Case
    {
        const char* name;
        int vcs;
        int depth;
    };
    for (const Case& c : {Case{"vc8", 2, 4}, Case{"vc16", 4, 4},
                          Case{"vc32", 8, 4}}) {
        Config cfg = baseConfig();
        applyPreset(cfg, c.name);
        EXPECT_EQ(cfg.getString("scheme"), "vc") << c.name;
        EXPECT_EQ(cfg.getInt("num_vcs"), c.vcs) << c.name;
        EXPECT_EQ(cfg.getInt("vc_depth"), c.depth) << c.name;
    }
}

TEST(Presets, FrConfigurationsMatchTable1)
{
    Config fr6 = baseConfig();
    applyPreset(fr6, "fr6");
    EXPECT_EQ(fr6.getString("scheme"), "fr");
    EXPECT_EQ(fr6.getInt("data_buffers"), 6);
    EXPECT_EQ(fr6.getInt("ctrl_vcs"), 2);
    EXPECT_EQ(fr6.getInt("ctrl_vc_depth"), 3);
    EXPECT_EQ(fr6.getInt("horizon"), 32);
    EXPECT_EQ(fr6.getInt("ctrl_width"), 2);
    EXPECT_EQ(fr6.getInt("flits_per_ctrl"), 1);

    Config fr13 = baseConfig();
    applyPreset(fr13, "fr13");
    EXPECT_EQ(fr13.getInt("data_buffers"), 13);
    EXPECT_EQ(fr13.getInt("ctrl_vcs"), 4);
}

TEST(Presets, WormholeIsOneVc)
{
    Config cfg = baseConfig();
    applyWormhole(cfg, 8);
    EXPECT_EQ(cfg.getInt("num_vcs"), 1);
    EXPECT_EQ(cfg.getInt("vc_depth"), 8);
}

TEST(Presets, LeadingControlEqualizesWires)
{
    Config cfg = baseConfig();
    applyLeadingControl(cfg, 2);
    EXPECT_EQ(cfg.getInt("data_link_latency"), 1);
    EXPECT_EQ(cfg.getInt("ctrl_link_latency"), 1);
    EXPECT_EQ(cfg.getInt("lead_time"), 2);
}

TEST(Presets, NamesResolve)
{
    for (const auto& name : presetNames()) {
        Config cfg = baseConfig();
        applyPreset(cfg, name);
        // Buffer presets pick a scheme; topology-size presets resize
        // the fabric and leave the scheme to a second preset.
        if (name.rfind("mesh", 0) == 0 || name.rfind("torus", 0) == 0)
            EXPECT_GE(cfg.getInt("size_x"), 32) << name;
        else
            EXPECT_TRUE(cfg.has("scheme")) << name;
    }
}

TEST(Presets, TopologySizePresetsComposeWithSchemes)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    applyPreset(cfg, "torus32");
    EXPECT_EQ(cfg.get<std::string>("topology"), "torus");
    EXPECT_EQ(cfg.getInt("size_x"), 32);
    EXPECT_EQ(cfg.getInt("size_y"), 32);
    EXPECT_EQ(cfg.get<std::string>("scheme"), "fr");
    applyPreset(cfg, "mesh64");
    EXPECT_EQ(cfg.get<std::string>("topology"), "mesh");
    EXPECT_EQ(cfg.getInt("size_x"), 64);
}

TEST(PresetsDeath, UnknownPresetIsFatal)
{
    Config cfg;
    EXPECT_EXIT(applyPreset(cfg, "fr99"), ::testing::ExitedWithCode(1),
                "unknown preset");
}

TEST(Sweep, CurveSetsOfferedPerPoint)
{
    Config cfg = baseConfig();
    cfg.set("size_x", 2);
    cfg.set("size_y", 2);
    applyVc8(cfg);
    RunOptions opt;
    opt.samplePackets = 50;
    opt.minWarmup = 200;
    opt.maxWarmup = 600;
    opt.maxCycles = 20000;
    const auto curve = latencyCurve(cfg, {0.1, 0.3}, opt);
    ASSERT_EQ(curve.size(), 2u);
    EXPECT_NEAR(curve[0].offeredFraction, 0.1, 1e-9);
    EXPECT_NEAR(curve[1].offeredFraction, 0.3, 1e-9);
    EXPECT_TRUE(curve[0].complete);
    EXPECT_TRUE(curve[1].complete);
}

TEST(Sweep, BaseLatencyUsesLowLoad)
{
    Config cfg = baseConfig();
    cfg.set("size_x", 2);
    cfg.set("size_y", 2);
    applyVc8(cfg);
    RunOptions opt;
    opt.samplePackets = 50;
    opt.minWarmup = 200;
    opt.maxWarmup = 600;
    opt.maxCycles = 20000;
    const RunResult r = measureBaseLatency(cfg, opt);
    EXPECT_NEAR(r.offeredFraction, 0.02, 1e-9);
    EXPECT_TRUE(r.complete);
}

}  // namespace
}  // namespace frfc
