/**
 * @file
 * Closed-loop workload engine: workload.* config resolution (and the
 * deprecated flat-key fallback), request-reply and memory-system
 * generators, per-class registry accounting, the class-causality
 * validator ledger, and bit-identity of closed-loop runs across the
 * stepped, event, and parallel kernels.
 */

#include <gtest/gtest.h>

#include <memory>

#include "check/validator.hpp"
#include "common/config.hpp"
#include "harness/presets.hpp"
#include "network/runner.hpp"
#include "proto/packet_registry.hpp"
#include "topology/mesh.hpp"
#include "traffic/injection.hpp"
#include "traffic/memory.hpp"
#include "traffic/pattern.hpp"
#include "traffic/workload.hpp"

namespace frfc {
namespace {

WorkloadContext
at(Cycle now, NodeId node, Rng& rng)
{
    return WorkloadContext{now, node, &rng};
}

// ---------------------------------------------------------------- config

TEST(WorkloadConfig, DefaultsAreSynthetic)
{
    Config cfg;
    EXPECT_EQ(workloadKind(cfg), "synthetic");
    EXPECT_DOUBLE_EQ(workloadOfferedFraction(cfg), 0.5);
    EXPECT_EQ(workloadPacketLength(cfg), 5);
    EXPECT_EQ(workloadReplyLength(cfg), 0);
    EXPECT_EQ(workloadInjectionKind(cfg), "bernoulli");
    EXPECT_TRUE(workloadTraceFile(cfg).empty());
}

TEST(WorkloadConfig, LegacyFlatKeysStillResolve)
{
    Config cfg;
    cfg.set("offered", 0.25);
    cfg.set("packet_length", 9);
    cfg.set("injection", "periodic");
    cfg.set("trace", "some.tr");
    EXPECT_DOUBLE_EQ(workloadOfferedFraction(cfg), 0.25);
    EXPECT_EQ(workloadPacketLength(cfg), 9);
    EXPECT_EQ(workloadInjectionKind(cfg), "periodic");
    EXPECT_EQ(workloadTraceFile(cfg), "some.tr");
    EXPECT_EQ(workloadKind(cfg), "trace");
}

TEST(WorkloadConfig, NamespacedKeyWinsOverLegacy)
{
    Config cfg;
    cfg.set("offered", 0.25);
    cfg.set(kWorkloadOfferedKey, 0.75);
    cfg.set("packet_length", 9);
    cfg.set(kWorkloadPacketLengthKey, 3);
    EXPECT_DOUBLE_EQ(workloadOfferedFraction(cfg), 0.75);
    EXPECT_EQ(workloadPacketLength(cfg), 3);
}

TEST(WorkloadConfig, SetWorkloadOfferedOverridesLegacy)
{
    Config cfg;
    cfg.set("offered", 0.9);
    setWorkloadOffered(cfg, 0.1);
    EXPECT_DOUBLE_EQ(workloadOfferedFraction(cfg), 0.1);
}

TEST(WorkloadConfig, TraceFileImpliesTraceKind)
{
    Config cfg;
    cfg.set(kWorkloadTraceFileKey, "w.tr");
    EXPECT_EQ(workloadKind(cfg), "trace");
    // An explicit kind wins over the inference.
    cfg.set(kWorkloadKindKey, "synthetic");
    EXPECT_EQ(workloadKind(cfg), "synthetic");
}

TEST(WorkloadConfigDeath, RejectsUnknownKind)
{
    Config cfg;
    cfg.set(kWorkloadKindKey, "mystery");
    EXPECT_EXIT(workloadKind(cfg), ::testing::ExitedWithCode(1),
                "workload.kind");
}

TEST(WorkloadConfigDeath, RejectsBadMemoryParamsWithFatalNamingTheKey)
{
    // User input must die via fatal() (exit 1, key named), never via
    // an assert's abort.
    Config mshrs;
    mshrs.set(kWorkloadKindKey, "memory");
    mshrs.set(kWorkloadMemMshrsKey, -1);
    EXPECT_EXIT(makeMemoryGenerators(mshrs, 4, 0.1),
                ::testing::ExitedWithCode(1), "workload.memory.mshrs");

    Config hot;
    hot.set(kWorkloadKindKey, "memory");
    hot.set(kWorkloadMemHotspotKey, 1.5);
    EXPECT_EXIT(makeMemoryGenerators(hot, 4, 0.1),
                ::testing::ExitedWithCode(1), "workload.memory.hotspot");
}

TEST(WorkloadConfig, MaxPacketFlitsCoversReplies)
{
    Config cfg;
    cfg.set(kWorkloadPacketLengthKey, 2);
    EXPECT_EQ(workloadMaxPacketFlits(cfg), 2);
    cfg.set(kWorkloadReplyLengthKey, 6);
    EXPECT_EQ(workloadMaxPacketFlits(cfg), 6);
    cfg.set(kWorkloadKindKey, "memory");
    cfg.set(kWorkloadMemReplyLengthKey, 11);
    EXPECT_EQ(workloadMaxPacketFlits(cfg), 11);
}

// ----------------------------------------------------- synthetic replies

TEST(SyntheticReply, OpenLoopWithoutReplyLength)
{
    Mesh2D topo(2, 2);
    UniformPattern pattern(topo);
    SyntheticGenerator gen(&pattern,
                           std::make_unique<BernoulliInjection>(0.25),
                           2);
    EXPECT_FALSE(gen.closedLoop());
    EXPECT_FALSE(gen.describe().closedLoop);
}

TEST(SyntheticReply, MintsReplyForCompletedRequest)
{
    Mesh2D topo(2, 2);
    UniformPattern pattern(topo);
    SyntheticGenerator gen(&pattern,
                           std::make_unique<BernoulliInjection>(0.25),
                           2, 6);
    EXPECT_TRUE(gen.closedLoop());

    Rng rng(1);
    PacketCompletion done;
    done.packet = makePacketId(2, 0);
    done.src = 2;
    done.dest = 1;
    done.length = 2;
    done.cls = MessageClass::kRequest;
    done.completed = 40;
    const auto reply = gen.onPacketEjected(done, at(40, 1, rng));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->dest, 2);
    EXPECT_EQ(reply->length, 6);
    EXPECT_EQ(reply->cls, MessageClass::kReply);

    // A completed reply must not breed another reply (no ping-pong).
    done.cls = MessageClass::kReply;
    EXPECT_FALSE(gen.onPacketEjected(done, at(41, 1, rng)).has_value());
}

// ------------------------------------------------------- memory workload

std::shared_ptr<MemoryParams>
eagerMemoryParams()
{
    auto params = std::make_shared<MemoryParams>();
    params->directories = {0};
    params->missRate = 1.0;  // every ON cycle misses
    params->reqLength = 1;
    params->replyLength = 5;
    params->mshrs = 1;
    params->burstOn = 1e9;  // never leaves ON...
    params->burstOff = 1.0; // ...and enters it on the first draw
    return params;
}

TEST(MemoryWorkload, DirectoryIsPassiveAndAnswersRequests)
{
    MemoryTrafficGenerator dir(eagerMemoryParams(), 0);
    Rng rng(1);
    for (Cycle c = 0; c < 50; ++c)
        EXPECT_FALSE(dir.generate(at(c, 0, rng)).has_value());

    PacketCompletion done;
    done.packet = makePacketId(3, 0);
    done.src = 3;
    done.dest = 0;
    done.length = 1;
    done.cls = MessageClass::kRequest;
    done.completed = 17;
    const auto reply = dir.onPacketEjected(done, at(17, 0, rng));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->dest, 3);
    EXPECT_EQ(reply->length, 5);
    EXPECT_EQ(reply->cls, MessageClass::kReply);

    done.cls = MessageClass::kReply;
    EXPECT_FALSE(dir.onPacketEjected(done, at(18, 0, rng)).has_value());
}

TEST(MemoryWorkload, MshrLimitGatesMissesUntilReplyReturns)
{
    MemoryTrafficGenerator req(eagerMemoryParams(), 3);
    Rng rng(7);
    const auto first = req.generate(at(0, 3, rng));
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->dest, 0);
    EXPECT_EQ(first->cls, MessageClass::kRequest);

    // The single MSHR is busy: later misses are dropped.
    for (Cycle c = 1; c < 20; ++c)
        EXPECT_FALSE(req.generate(at(c, 3, rng)).has_value());

    PacketCompletion fill;
    fill.packet = makePacketId(0, 0);
    fill.src = 0;
    fill.dest = 3;
    fill.length = 5;
    fill.cls = MessageClass::kReply;
    fill.completed = 20;
    EXPECT_FALSE(req.onPacketEjected(fill, at(20, 3, rng)).has_value());
    EXPECT_TRUE(req.generate(at(20, 3, rng)).has_value());
}

TEST(MemoryWorkload, BuildsOneGeneratorPerNodeAndClampsDirectories)
{
    Config cfg;
    cfg.set(kWorkloadMemDirectoriesKey, 16);
    const auto generators = makeMemoryGenerators(cfg, 4, 0.1);
    ASSERT_EQ(generators.size(), 4u);
    int directories = 0;
    for (const auto& gen : generators) {
        EXPECT_TRUE(gen->closedLoop());
        const GeneratorInfo info = gen->describe();
        EXPECT_EQ(info.kind, "memory");
        for (const auto& param : info.params) {
            if (param.first == "role" && param.second == "directory")
                ++directories;
        }
    }
    EXPECT_EQ(directories, 3);  // clamped to n - 1
}

// -------------------------------------------------- per-class accounting

TEST(PacketRegistryClasses, CountsAndSamplesPerClass)
{
    PacketRegistry reg;
    reg.startSampling(10);
    const PacketId request = reg.create(0, 3, 1, 0);
    const PacketId reply =
        reg.create(3, 0, 2, 5, MessageClass::kReply);
    EXPECT_EQ(reg.classCreated(MessageClass::kRequest), 1);
    EXPECT_EQ(reg.classCreated(MessageClass::kReply), 1);

    Flit f;
    f.packet = request;
    f.seq = 0;
    f.dest = 3;
    f.payload = Flit::expectedPayload(request, 0);
    reg.deliverFlit(10, f);
    EXPECT_EQ(reg.classDelivered(MessageClass::kRequest), 1);
    EXPECT_EQ(reg.classDelivered(MessageClass::kReply), 0);
    EXPECT_DOUBLE_EQ(reg.sampleClassLatency(MessageClass::kRequest)
                         .mean(), 10.0);

    Flit r0;
    r0.packet = reply;
    r0.seq = 0;
    r0.dest = 0;
    r0.cls = MessageClass::kReply;
    r0.payload = Flit::expectedPayload(reply, 0);
    reg.deliverFlit(25, r0);
    Flit r1 = r0;
    r1.seq = 1;
    r1.payload = Flit::expectedPayload(reply, 1);
    reg.deliverFlit(26, r1);
    EXPECT_EQ(reg.classDelivered(MessageClass::kReply), 1);
    EXPECT_DOUBLE_EQ(reg.sampleClassLatency(MessageClass::kReply).mean(),
                     21.0);
    EXPECT_EQ(
        reg.sampleClassHistogram(MessageClass::kReply).total(), 1);
}

TEST(PacketRegistryClassesDeath, RejectsClassChangeInFlight)
{
    PacketRegistry reg;
    const PacketId id = reg.create(0, 3, 1, 0);
    Flit f;
    f.packet = id;
    f.seq = 0;
    f.dest = 3;
    f.cls = MessageClass::kReply;  // created as a request
    f.payload = Flit::expectedPayload(id, 0);
    EXPECT_DEATH(reg.deliverFlit(4, f), "message class changed");
}

// -------------------------------------------------------- validator rule

TEST(ValidatorClasses, ReplyAfterCompletionIsClean)
{
    Validator v(ValidateLevel::kInvariants);
    v.initClassAccounting(4);
    v.onPacketCompleted(2);
    v.onReplyCreated(2, 10, "source2");
    EXPECT_TRUE(v.clean());
}

TEST(ValidatorClasses, ReplyWithoutRequestIsFlagged)
{
    Validator v(ValidateLevel::kInvariants);
    v.setFailFast(false);
    v.initClassAccounting(4);
    v.onPacketCompleted(1);  // a completion at a *different* node
    v.onReplyCreated(2, 10, "source2");
    EXPECT_FALSE(v.clean());
    EXPECT_TRUE(v.sawInvariant("class.reply-without-request"));
}

// --------------------------------------------- cross-kernel bit-identity

RunOptions
quickOptions()
{
    RunOptions opt;
    opt.samplePackets = 300;
    opt.minWarmup = 300;
    opt.maxWarmup = 1000;
    opt.maxCycles = 30000;
    return opt;
}

Config
closedLoopBase(const std::string& preset, const std::string& kind)
{
    Config cfg = baseConfig();
    applyPreset(cfg, preset);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    setWorkloadOffered(cfg, 0.1);
    if (kind == "memory") {
        cfg.set(kWorkloadKindKey, "memory");
        cfg.set(kWorkloadMemDirectoriesKey, 2);
        cfg.set(kWorkloadMemHotspotKey, 0.3);
        cfg.set(kWorkloadMemBurstOnKey, 16.0);
        cfg.set(kWorkloadMemBurstOffKey, 48.0);
    } else {
        cfg.set(kWorkloadPacketLengthKey, 2);
        cfg.set(kWorkloadReplyLengthKey, 4);
    }
    cfg.set("sim.validate", 1);
    return cfg;
}

class ClosedLoopEquivalence
    : public ::testing::TestWithParam<std::pair<const char*, const char*>>
{
};

TEST_P(ClosedLoopEquivalence, BitIdenticalAcrossKernelsAndShards)
{
    const Config base =
        closedLoopBase(GetParam().first, GetParam().second);
    const RunOptions opt = quickOptions();

    Config stepped_cfg = base;
    stepped_cfg.set("sim.kernel", "stepped");
    const RunResult stepped = runExperiment(stepped_cfg, opt);
    EXPECT_TRUE(stepped.hasClasses);
    EXPECT_GT(stepped.requestStats.delivered, 0);
    EXPECT_GT(stepped.replyStats.delivered, 0);

    Config event_cfg = base;
    event_cfg.set("sim.kernel", "event");
    EXPECT_TRUE(stepped.bitIdentical(runExperiment(event_cfg, opt)));

    for (const int shards : {2, 5}) {
        Config par_cfg = base;
        par_cfg.set("sim.kernel", "parallel");
        par_cfg.set("sim.shards", shards);
        EXPECT_TRUE(stepped.bitIdentical(runExperiment(par_cfg, opt)))
            << "parallel kernel diverged at " << shards << " shards";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ClosedLoopEquivalence,
    ::testing::Values(std::make_pair("fr6", "reqreply"),
                      std::make_pair("vc8", "reqreply"),
                      std::make_pair("fr6", "memory"),
                      std::make_pair("vc8", "memory")));

}  // namespace
}  // namespace frfc
