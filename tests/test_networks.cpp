/**
 * @file
 * Integration tests: fully-assembled networks deliver every sampled
 * packet intact across schemes, topologies, traffic patterns, and the
 * paper's optional mechanisms (wide control flits, all-or-nothing
 * scheduling, multi-ported input buffers, shared-pool VC).
 */

#include <gtest/gtest.h>

#include "harness/presets.hpp"
#include "network/fr_network.hpp"
#include "network/network.hpp"
#include "network/runner.hpp"
#include "network/vc_network.hpp"

namespace frfc {
namespace {

RunOptions
fast()
{
    RunOptions opt;
    opt.samplePackets = 300;
    opt.minWarmup = 400;
    opt.maxWarmup = 1500;
    opt.maxCycles = 60000;
    return opt;
}

Config
smallBase()
{
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.25);
    return cfg;
}

TEST(VcIntegration, SharedPoolDelivers)
{
    Config cfg = smallBase();
    applyVc8(cfg);
    cfg.set("shared_pool", true);
    const RunResult r = runExperiment(cfg, fast());
    EXPECT_TRUE(r.complete);
}

TEST(VcIntegration, WormholeDelivers)
{
    Config cfg = smallBase();
    applyWormhole(cfg, 8);
    const RunResult r = runExperiment(cfg, fast());
    EXPECT_TRUE(r.complete);
}

TEST(VcIntegration, TorusDelivers)
{
    Config cfg = smallBase();
    applyVc8(cfg);
    cfg.set("topology", "torus");
    const RunResult r = runExperiment(cfg, fast());
    EXPECT_TRUE(r.complete);
}

TEST(VcIntegration, PeriodicInjectionDelivers)
{
    Config cfg = smallBase();
    applyVc8(cfg);
    cfg.set("workload.injection", "periodic");
    const RunResult r = runExperiment(cfg, fast());
    EXPECT_TRUE(r.complete);
}

TEST(FrIntegration, WideControlFlitsExerciseScheduleList)
{
    // One control flit leading four data flits (Section 5, "single wide
    // control flit"): data can now overtake control, exercising the
    // schedule list. Pools must hold two flit groups (see DESIGN.md on
    // the wide-control deadlock), hence FR13-size pools.
    Config cfg = smallBase();
    applyFr6(cfg);
    cfg.set("data_buffers", 13);
    cfg.set("flits_per_ctrl", 4);
    cfg.set("workload.packet_length", 9);
    FrNetwork net(cfg);
    RunOptions opt = fast();
    const RunResult r = runMeasurement(net, opt);
    EXPECT_TRUE(r.complete);
}

TEST(FrIntegration, WideControlNeedsTwoGroupsOfPoolCapacity)
{
    // Reproduction finding (see DESIGN.md): with wide control flits
    // (d = 4) and pools smaller than two flit groups, data that
    // overtakes a stalled control flit parks without a departure
    // reservation, and the control-VC/data-pool dependency cycle of the
    // paper's Section 5 deadlock discussion closes even at light load.
    // Adequate pools (>= 2d) keep the network live.
    Config small = baseConfig();  // full 8x8 mesh
    applyFr6(small);
    small.set("flits_per_ctrl", 4);
    small.set("workload.packet_length", 9);
    small.set("workload.offered", 0.10);
    FrNetwork starved(small);
    starved.kernel().run(20000);
    const auto stuck = starved.registry().packetsDelivered();
    starved.kernel().run(5000);
    EXPECT_EQ(starved.registry().packetsDelivered(), stuck)
        << "expected the documented wide-control deadlock";

    Config roomy = small;
    roomy.set("data_buffers", 13);
    FrNetwork live(roomy);
    live.kernel().run(20000);
    const auto delivered = live.registry().packetsDelivered();
    live.kernel().run(5000);
    EXPECT_GT(live.registry().packetsDelivered(), delivered);
    EXPECT_LT(live.registry().packetsInFlight(), 100);
}

TEST(FrIntegration, AllOrNothingDelivers)
{
    Config cfg = smallBase();
    applyFr6(cfg);
    cfg.set("data_buffers", 13);
    cfg.set("all_or_nothing", true);
    cfg.set("flits_per_ctrl", 4);
    cfg.set("workload.packet_length", 9);
    const RunResult r = runExperiment(cfg, fast());
    EXPECT_TRUE(r.complete);
}

TEST(FrIntegration, MultiPortedInputBufferDelivers)
{
    // Footnote 7: multi-ported input buffers (speedup 2).
    Config cfg = smallBase();
    applyFr6(cfg);
    cfg.set("speedup", 2);
    const RunResult r = runExperiment(cfg, fast());
    EXPECT_TRUE(r.complete);
}

TEST(FrIntegration, TorusDelivers)
{
    Config cfg = smallBase();
    applyFr6(cfg);
    cfg.set("topology", "torus");
    const RunResult r = runExperiment(cfg, fast());
    EXPECT_TRUE(r.complete);
}

TEST(FrIntegration, ShortAndLongHorizonsDeliver)
{
    for (int horizon : {16, 64, 128}) {
        Config cfg = smallBase();
        applyFr6(cfg);
        cfg.set("horizon", horizon);
        const RunResult r = runExperiment(cfg, fast());
        EXPECT_TRUE(r.complete) << "horizon " << horizon;
    }
}

TEST(FrIntegration, SingleFlitPacketsDeliver)
{
    Config cfg = smallBase();
    applyFr6(cfg);
    cfg.set("workload.packet_length", 1);
    const RunResult r = runExperiment(cfg, fast());
    EXPECT_TRUE(r.complete);
}

TEST(FrIntegration, LongLeadReducesBaseLatency)
{
    // Section 4.4: with a sufficient control lead, data flits pass
    // through routers with scheduling already done.
    Config cfg = smallBase();
    applyFr6(cfg);
    applyLeadingControl(cfg, 10);
    cfg.set("workload.offered", 0.05);
    Config cfg1 = cfg;
    applyLeadingControl(cfg1, 1);
    const RunResult lead10 = runExperiment(cfg, fast());
    const RunResult lead1 = runExperiment(cfg1, fast());
    ASSERT_TRUE(lead10.complete);
    ASSERT_TRUE(lead1.complete);
    // The 10-cycle deferral is charged to latency, yet hop costs drop;
    // the two must be within a small band, and bypasses dominate.
    EXPECT_LT(lead10.avgLatency, lead1.avgLatency + 12.0);
}

TEST(FrIntegration, BypassesDominateAtLowLoad)
{
    Config cfg = smallBase();
    applyFr6(cfg);
    cfg.set("workload.offered", 0.05);
    FrNetwork net(cfg);
    const RunResult r = runMeasurement(net, fast());
    ASSERT_TRUE(r.complete);
    // In the absence of contention a data flit departs the cycle after
    // it arrives (Section 3) — most forwards are bypasses.
    EXPECT_GT(net.totalBypasses(), 0);
}

TEST(FrIntegration, ControlLeadIsPositiveWithFastControl)
{
    Config cfg = smallBase();
    applyFr6(cfg);
    FrNetwork net(cfg);
    const RunResult r = runMeasurement(net, fast());
    ASSERT_TRUE(r.complete);
    EXPECT_GT(net.avgControlLead(), 0.0);
}

TEST(Determinism, SameSeedSameResult)
{
    Config cfg = smallBase();
    applyFr6(cfg);
    const RunResult a = runExperiment(cfg, fast());
    const RunResult b = runExperiment(cfg, fast());
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.packetsDelivered, b.packetsDelivered);
}

TEST(Determinism, DifferentSeedsDiffer)
{
    Config cfg = smallBase();
    applyFr6(cfg);
    const RunResult a = runExperiment(cfg, fast());
    cfg.set("seed", 2);
    const RunResult b = runExperiment(cfg, fast());
    EXPECT_NE(a.avgLatency, b.avgLatency);
    EXPECT_NEAR(a.avgLatency, b.avgLatency, a.avgLatency * 0.25);
}

TEST(Runner, ReportsAcceptedThroughputNearOffered)
{
    Config cfg = smallBase();
    applyVc8(cfg);
    cfg.set("workload.offered", 0.3);
    const RunResult r = runExperiment(cfg, fast());
    ASSERT_TRUE(r.complete);
    EXPECT_NEAR(r.acceptedFraction, 0.3, 0.08);
}

TEST(Runner, OptionsFromConfig)
{
    Config cfg;
    cfg.set("run.sample_packets", 123);
    cfg.set("run.min_warmup", 456);
    cfg.set("run.track_occupancy", true);
    const RunOptions opt = RunOptions::fromConfig(cfg);
    EXPECT_EQ(opt.samplePackets, 123);
    EXPECT_EQ(opt.minWarmup, 456);
    EXPECT_TRUE(opt.trackOccupancy);
}

TEST(Runner, SaturatedRunReportsIncomplete)
{
    Config cfg = smallBase();
    applyWormhole(cfg, 2);  // tiny buffers, easy to saturate
    cfg.set("workload.offered", 1.2);
    RunOptions opt = fast();
    opt.maxCycles = 6000;
    const RunResult r = runExperiment(cfg, opt);
    EXPECT_FALSE(r.complete);
}

/** Every (scheme, traffic) pair delivers at light load. */
class TrafficMatrix
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>>
{
};

TEST_P(TrafficMatrix, DeliversAtLightLoad)
{
    const auto [preset, traffic] = GetParam();
    Config cfg = smallBase();
    applyPreset(cfg, preset);
    cfg.set("traffic", traffic);
    cfg.set("workload.offered", 0.15);
    const RunResult r = runExperiment(cfg, fast());
    EXPECT_TRUE(r.complete) << preset << "/" << traffic;
    EXPECT_GT(r.avgLatency, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, TrafficMatrix,
    ::testing::Combine(::testing::Values("vc8", "fr6"),
                       ::testing::Values("uniform", "transpose", "bitcomp",
                                         "bitrev", "shuffle", "tornado",
                                         "neighbor", "hotspot")));

}  // namespace
}  // namespace frfc
