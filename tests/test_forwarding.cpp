/**
 * @file
 * Store-and-forward and virtual cut-through forwarding disciplines
 * (the paper's Section 2 related work, implemented as VcRouter modes).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/config.hpp"
#include "harness/presets.hpp"
#include "network/runner.hpp"
#include "proto/flit.hpp"
#include "routing/routing.hpp"
#include "sim/channel.hpp"
#include "topology/mesh.hpp"
#include "vc/vc_router.hpp"

namespace frfc {
namespace {

/** Center router of a 3x3 mesh in a given forwarding mode. */
struct ForwardingFixture
{
    explicit ForwardingFixture(Forwarding mode)
        : mesh(3, 3), routing(mesh, true)
    {
        VcRouterParams params;
        params.numVcs = 1;
        params.vcDepth = 8;
        params.forwarding = mode;
        router = std::make_unique<VcRouter>("r4", 4, routing, params,
                                            Rng(1));
        in = std::make_unique<Channel<Flit>>("in", 1);
        out = std::make_unique<Channel<Flit>>("out", 1);
        cin = std::make_unique<Channel<Credit>>("cin", 1, 2);
        cout = std::make_unique<Channel<Credit>>("cout", 1, 2);
        router->connectDataIn(kWest, in.get());
        router->connectDataOut(kEast, out.get());
        router->connectCreditIn(kEast, cin.get());
        router->connectCreditOut(kWest, cout.get());
    }

    Flit
    makeFlit(int seq, int len)
    {
        Flit f;
        f.packet = 1;
        f.seq = seq;
        f.packetLength = len;
        f.head = seq == 0;
        f.tail = seq == len - 1;
        f.src = 3;
        f.dest = 5;
        f.vc = 0;
        f.payload = Flit::expectedPayload(1, seq);
        return f;
    }

    /** Stream a 4-flit packet in; return the cycle the head flit is
     *  seen on the far end of the East wire (departure + 1). */
    Cycle
    headDeparture()
    {
        Cycle head_out = kInvalidCycle;
        for (Cycle t = 0; t <= 20; ++t) {
            if (t < 4)
                in->push(t, makeFlit(static_cast<int>(t), 4));
            router->tick(t);
            for (const Flit& f : out->drain(t)) {
                if (f.head && head_out == kInvalidCycle)
                    head_out = t;
            }
            cout->drain(t);
        }
        return head_out;
    }

    Mesh2D mesh;
    DimensionOrderRouting routing;
    std::unique_ptr<VcRouter> router;
    std::unique_ptr<Channel<Flit>> in;
    std::unique_ptr<Channel<Flit>> out;
    std::unique_ptr<Channel<Credit>> cin;
    std::unique_ptr<Channel<Credit>> cout;
};

TEST(Forwarding, WormholeHeadLeavesImmediately)
{
    ForwardingFixture fx(Forwarding::kFlit);
    // Head arrives tick 1, routes tick 2, departs tick 3, seen tick 4.
    EXPECT_EQ(fx.headDeparture(), 4);
}

TEST(Forwarding, CutThroughAlsoCutsThrough)
{
    // With 8 downstream credits the whole 4-flit packet fits: VCT
    // forwards as early as wormhole.
    ForwardingFixture fx(Forwarding::kCutThrough);
    EXPECT_EQ(fx.headDeparture(), 4);
}

TEST(Forwarding, StoreAndForwardWaitsForWholePacket)
{
    ForwardingFixture fx(Forwarding::kStoreAndForward);
    // Last flit arrives during tick 4; head leaves tick 5, seen tick 6.
    EXPECT_EQ(fx.headDeparture(), 6);
}

TEST(Forwarding, CutThroughNeedsRoomForTheWholePacket)
{
    // Only 3 of 8 downstream slots free: VCT (packet of 4) stalls
    // until more credits return; wormhole would advance.
    ForwardingFixture vct(Forwarding::kCutThrough);
    // Consume 5 credits by a prior packet that never returns them:
    // emulate by draining credits manually — simpler: push a 5-flit
    // packet first that the far side never credits back.
    for (Cycle t = 0; t <= 30; ++t) {
        if (t < 5)
            vct.in->push(t, [&] {
                Flit f;
                f.packet = 9;
                f.seq = static_cast<int>(t);
                f.packetLength = 5;
                f.head = t == 0;
                f.tail = t == 4;
                f.src = 3;
                f.dest = 5;
                f.vc = 0;
                f.payload = Flit::expectedPayload(9, f.seq);
                return f;
            }());
        if (t >= 10 && t < 14) {
            vct.in->push(t, vct.makeFlit(static_cast<int>(t - 10), 4));
        }
        vct.router->tick(t);
        vct.out->drain(t);
        vct.cout->drain(t);
    }
    // 8 credits - 5 spent = 3 < 4: the second packet's head is stuck.
    EXPECT_EQ(vct.router->bufferedFlits(kWest), 4);

    // Two credits later it moves.
    vct.cin->push(30, Credit{0});
    vct.cin->push(30, Credit{0});
    bool moved = false;
    for (Cycle t = 31; t <= 40; ++t) {
        vct.router->tick(t);
        moved = moved || !vct.out->drain(t).empty();
        vct.cout->drain(t);
    }
    EXPECT_TRUE(moved);
}

TEST(ForwardingIntegration, AllDisciplinesDeliver)
{
    for (const char* mode : {"flit", "cut_through", "store_and_forward"}) {
        Config cfg = baseConfig();
        applyWormhole(cfg, 8);
        cfg.set("size_x", 4);
        cfg.set("size_y", 4);
        cfg.set("workload.offered", 0.2);
        cfg.set("forwarding", mode);
        RunOptions opt;
        opt.samplePackets = 300;
        opt.minWarmup = 500;
        opt.maxWarmup = 2000;
        opt.maxCycles = 60000;
        const RunResult r = runExperiment(cfg, opt);
        EXPECT_TRUE(r.complete) << mode;
    }
}

TEST(ForwardingIntegration, LatencyOrderingSafVsWormhole)
{
    RunOptions opt;
    opt.samplePackets = 400;
    opt.minWarmup = 500;
    opt.maxWarmup = 2000;
    opt.maxCycles = 60000;
    double latency[2];
    int idx = 0;
    for (const char* mode : {"store_and_forward", "flit"}) {
        Config cfg = baseConfig();
        applyWormhole(cfg, 8);
        cfg.set("size_x", 4);
        cfg.set("size_y", 4);
        cfg.set("workload.offered", 0.15);
        cfg.set("forwarding", mode);
        latency[idx++] = runExperiment(cfg, opt).avgLatency;
    }
    // SAF pays ~a packet of serialization per hop.
    EXPECT_GT(latency[0], latency[1] * 1.3);
}

TEST(ForwardingIntegrationDeath, SafRejectsUndersizedBuffers)
{
    Config cfg = baseConfig();
    applyWormhole(cfg, 4);  // 4 < 5-flit packets
    cfg.set("forwarding", "store_and_forward");
    EXPECT_EXIT(runExperiment(cfg, RunOptions::quick()),
                ::testing::ExitedWithCode(1), "vc_depth");
}

}  // namespace
}  // namespace frfc
