/**
 * @file
 * The analytical overhead models must reproduce Table 1 and Table 2 of
 * the paper bit-for-bit (one documented exception: the paper's FR13
 * input-reservation-table entry, see DESIGN.md).
 */

#include <gtest/gtest.h>

#include "overhead/overhead.hpp"

namespace frfc {
namespace {

TEST(CeilLog2, MatchesDefinition)
{
    EXPECT_EQ(ceilLog2(1), 0);
    EXPECT_EQ(ceilLog2(2), 1);
    EXPECT_EQ(ceilLog2(3), 2);
    EXPECT_EQ(ceilLog2(4), 2);
    EXPECT_EQ(ceilLog2(6), 3);
    EXPECT_EQ(ceilLog2(13), 4);
    EXPECT_EQ(ceilLog2(32), 5);
}

TEST(Table1, Vc8ColumnMatchesPaper)
{
    VcStorageParams p;
    p.numVcs = 2;
    p.dataBuffers = 8;
    const VcStorage s = computeVcStorage(p);
    EXPECT_EQ(s.dataBufferBits, 10360);
    EXPECT_EQ(s.queuePointerBits, 60);
    EXPECT_EQ(s.statusBits, 32);
    EXPECT_EQ(s.totalBits, 10452);
    EXPECT_NEAR(s.flitsPerInput, 8.17, 0.01);
}

TEST(Table1, Vc16ColumnMatchesPaper)
{
    VcStorageParams p;
    p.numVcs = 4;
    p.dataBuffers = 16;
    const VcStorage s = computeVcStorage(p);
    EXPECT_EQ(s.dataBufferBits, 20800);
    EXPECT_EQ(s.queuePointerBits, 160);
    EXPECT_EQ(s.statusBits, 80);
    EXPECT_EQ(s.totalBits, 21040);
    EXPECT_NEAR(s.flitsPerInput, 16.44, 0.01);
}

TEST(Table1, Vc32ColumnMatchesPaper)
{
    VcStorageParams p;
    p.numVcs = 8;
    p.dataBuffers = 32;
    const VcStorage s = computeVcStorage(p);
    EXPECT_EQ(s.dataBufferBits, 41760);
    EXPECT_EQ(s.queuePointerBits, 400);
    EXPECT_EQ(s.statusBits, 192);
    EXPECT_EQ(s.totalBits, 42352);
    EXPECT_NEAR(s.flitsPerInput, 33.09, 0.01);
}

TEST(Table1, Fr6ColumnMatchesPaper)
{
    FrStorageParams p;
    p.dataBuffers = 6;
    p.ctrlVcs = 2;
    p.ctrlBuffers = 6;
    const FrStorage s = computeFrStorage(p);
    EXPECT_EQ(s.dataBufferBits, 7680);
    EXPECT_EQ(s.ctrlBufferBits, 240);
    EXPECT_EQ(s.queuePointerBits, 60);
    EXPECT_EQ(s.outputTableBits, 512);
    EXPECT_EQ(s.inputTableBits, 2270);
    EXPECT_EQ(s.totalBits, 10762);
    EXPECT_NEAR(s.flitsPerInput, 8.40, 0.01);
}

TEST(Table1, Fr13ColumnMatchesPaperExceptInputTable)
{
    FrStorageParams p;
    p.dataBuffers = 13;
    p.ctrlVcs = 4;
    p.ctrlBuffers = 12;
    const FrStorage s = computeFrStorage(p);
    EXPECT_EQ(s.dataBufferBits, 16640);
    EXPECT_EQ(s.ctrlBufferBits, 540);
    EXPECT_EQ(s.queuePointerBits, 160);
    EXPECT_EQ(s.outputTableBits, 640);
    // The paper prints 1980 for the input reservation table, which is
    // inconsistent with its own per-slot formula for b_d = 13 (it would
    // require 2-bit buffer indices). Our consistent arithmetic yields:
    EXPECT_EQ(s.inputTableBits, 2620);
    // Consequently the total differs by the same 640 bits.
    EXPECT_EQ(s.totalBits, 20600);
}

TEST(Table1, StorageMatchedPairsAreClose)
{
    // The whole point of Table 1: FR6 ~ VC8 and FR13 ~ VC16 storage.
    VcStorageParams vc8;
    vc8.numVcs = 2;
    vc8.dataBuffers = 8;
    FrStorageParams fr6;
    fr6.dataBuffers = 6;
    fr6.ctrlVcs = 2;
    fr6.ctrlBuffers = 6;
    const double a = computeVcStorage(vc8).flitsPerInput;
    const double b = computeFrStorage(fr6).flitsPerInput;
    EXPECT_NEAR(a, b, 0.35);

    VcStorageParams vc16;
    vc16.numVcs = 4;
    vc16.dataBuffers = 16;
    FrStorageParams fr13;
    fr13.dataBuffers = 13;
    fr13.ctrlVcs = 4;
    fr13.ctrlBuffers = 12;
    const double c = computeVcStorage(vc16).flitsPerInput;
    const double d = computeFrStorage(fr13).flitsPerInput;
    EXPECT_NEAR(c, d, 0.85);
}

TEST(Table2, VcOverheadPerDataFlit)
{
    // n = 6 (64 nodes), L = 5, v_d = 2: 6/5 + 1 = 2.2 bits.
    EXPECT_NEAR(vcBandwidthOverhead(6, 5, 2), 2.2, 1e-9);
}

TEST(Table2, FrOverheadPerDataFlit)
{
    // n = 6, L = 5, v_c = 2, d = 1, s = 32: 6/5 + 1 + 5 = 7.2 bits.
    EXPECT_NEAR(frBandwidthOverhead(6, 5, 2, 1, 32), 7.2, 1e-9);
}

TEST(Table2, ExtraFrBandwidthIsTheTimestamp)
{
    // Section 4: "flit-reservation flow control incurs 5 more bits of
    // bandwidth overhead for a scheduling horizon of 32 cycles, which
    // is 2% for 256-bit data flits."
    const double extra = frBandwidthOverhead(6, 5, 2, 1, 32)
        - vcBandwidthOverhead(6, 5, 2);
    EXPECT_NEAR(extra, 5.0, 1e-9);
    EXPECT_NEAR(extra / 256.0, 0.02, 0.001);
}

TEST(Table2, WideControlFlitsAmortizeVcid)
{
    // d > 1 lowers the VCID share of the overhead (Section 5).
    const double d1 = frBandwidthOverhead(6, 21, 2, 1, 32);
    const double d4 = frBandwidthOverhead(6, 21, 4, 4, 32);
    EXPECT_GT(d1, 0.0);
    EXPECT_LT(frBandwidthOverhead(6, 21, 2, 4, 32), d1);
    (void)d4;
}

}  // namespace
}  // namespace frfc
