/**
 * @file
 * Micro-tests of a single VC router wired to loose channels: per-hop
 * latency, credit flow, VC release, and overflow detection.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/config.hpp"
#include "proto/flit.hpp"
#include "routing/routing.hpp"
#include "sim/channel.hpp"
#include "topology/mesh.hpp"
#include "vc/vc_router.hpp"

namespace frfc {
namespace {

/** A 3x3 mesh's center router (node 4) with every port hand-wired. */
class VcRouterFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        mesh = std::make_unique<Mesh2D>(3, 3);
        routing = std::make_unique<DimensionOrderRouting>(*mesh, true);
        VcRouterParams params;
        params.numVcs = 2;
        params.vcDepth = 4;
        router = std::make_unique<VcRouter>("r4", 4, *routing, params,
                                            Rng(1));
        for (PortId p = 0; p < kNumPorts; ++p) {
            in[p] = std::make_unique<Channel<Flit>>(
                "in" + std::to_string(p), 1);
            out[p] = std::make_unique<Channel<Flit>>(
                "out" + std::to_string(p), 1);
            cin[p] = std::make_unique<Channel<Credit>>(
                "cin" + std::to_string(p), 1, 2);
            cout[p] = std::make_unique<Channel<Credit>>(
                "cout" + std::to_string(p), 1, 2);
            router->connectDataIn(p, in[p].get());
            router->connectDataOut(p, out[p].get());
            router->connectCreditIn(p, cin[p].get());
            router->connectCreditOut(p, cout[p].get());
        }
    }

    Flit
    makeFlit(PacketId id, int seq, int len, NodeId dest, VcId vc)
    {
        Flit f;
        f.packet = id;
        f.seq = seq;
        f.packetLength = len;
        f.head = seq == 0;
        f.tail = seq == len - 1;
        f.src = 0;
        f.dest = dest;
        f.vc = vc;
        f.created = 0;
        f.payload = Flit::expectedPayload(id, seq);
        return f;
    }

    std::unique_ptr<Mesh2D> mesh;
    std::unique_ptr<DimensionOrderRouting> routing;
    std::unique_ptr<VcRouter> router;
    std::unique_ptr<Channel<Flit>> in[kNumPorts];
    std::unique_ptr<Channel<Flit>> out[kNumPorts];
    std::unique_ptr<Channel<Credit>> cin[kNumPorts];
    std::unique_ptr<Channel<Credit>> cout[kNumPorts];
};

TEST_F(VcRouterFixture, HeadFlitPaysRoutingPlusSwitchCycle)
{
    // Single-flit packet from the West input heading East (node 4 -> 5).
    in[kWest]->push(0, makeFlit(1, 0, 1, 5, 0));
    // Arrives during cycle 1; routing/VA during cycle 2; departs 3.
    router->tick(0);
    router->tick(1);
    EXPECT_FALSE(out[kEast]->hasArrival(2 + 1));
    router->tick(2);
    router->tick(3);
    EXPECT_TRUE(out[kEast]->hasArrival(3 + 1));
    const auto got = out[kEast]->drain(4);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].packet, 1);
}

TEST_F(VcRouterFixture, BodyFlitsFollowAtFullRate)
{
    // 3-flit packet: head departs at 3, bodies at 4 and 5.
    for (int s = 0; s < 3; ++s)
        in[kWest]->push(s, makeFlit(2, s, 3, 5, 0));
    for (Cycle t = 0; t <= 5; ++t)
        router->tick(t);
    EXPECT_EQ(out[kEast]->drain(4).size(), 1u);
    EXPECT_EQ(out[kEast]->drain(5).size(), 1u);
    EXPECT_EQ(out[kEast]->drain(6).size(), 1u);
}

TEST_F(VcRouterFixture, CreditsReturnUpstreamPerFlit)
{
    for (int s = 0; s < 2; ++s)
        in[kWest]->push(s, makeFlit(3, s, 2, 5, 1));
    Cycle credits = 0;
    for (Cycle t = 0; t <= 8; ++t) {
        router->tick(t);
        for (const Credit& c : cout[kWest]->drain(t)) {
            EXPECT_EQ(c.vc, 1);
            ++credits;
        }
    }
    EXPECT_EQ(credits, 2);
}

TEST(VcRouterWormhole, StalledWithoutDownstreamCredits)
{
    // Wormhole configuration (one VC) makes credit exhaustion
    // deterministic: 4 downstream slots, so a fifth packet stalls.
    Mesh2D mesh(3, 3);
    DimensionOrderRouting routing(mesh, true);
    VcRouterParams params;
    params.numVcs = 1;
    params.vcDepth = 4;
    VcRouter router("r4", 4, routing, params, Rng(1));
    Channel<Flit> in_w("in", 1);
    Channel<Flit> out_e("out", 1);
    Channel<Credit> cin_e("cin", 1, 2);
    Channel<Credit> cout_w("cout", 1, 2);
    router.connectDataIn(kWest, &in_w);
    router.connectDataOut(kEast, &out_e);
    router.connectCreditIn(kEast, &cin_e);
    router.connectCreditOut(kWest, &cout_w);

    auto flit = [](PacketId id) {
        Flit f;
        f.packet = id;
        f.seq = 0;
        f.packetLength = 1;
        f.head = f.tail = true;
        f.src = 3;
        f.dest = 5;
        f.vc = 0;
        f.payload = Flit::expectedPayload(id, 0);
        return f;
    };

    // Five single-flit packets, two cycles apart so VA keeps up.
    int sent = 0;
    for (Cycle t = 0; t <= 20; ++t) {
        if (t % 2 == 0 && t < 10)
            in_w.push(t, flit(100 + static_cast<int>(t) / 2));
        router.tick(t);
        sent += static_cast<int>(out_e.drain(t).size());
        cout_w.drain(t);
    }
    EXPECT_EQ(sent, 4);  // the fifth is credit-starved

    // One credit returns: the fifth packet moves.
    cin_e.push(20, Credit{0});
    for (Cycle t = 21; t <= 26; ++t) {
        router.tick(t);
        sent += static_cast<int>(out_e.drain(t).size());
        cout_w.drain(t);
    }
    EXPECT_EQ(sent, 5);
}

TEST_F(VcRouterFixture, LocalTrafficEjects)
{
    in[kWest]->push(0, makeFlit(4, 0, 1, 4, 0));  // dest == this node
    for (Cycle t = 0; t <= 4; ++t)
        router->tick(t);
    int ejected = 0;
    for (Cycle t = 1; t <= 5; ++t)
        ejected += static_cast<int>(out[kLocal]->drain(t).size());
    EXPECT_EQ(ejected, 1);
}

TEST_F(VcRouterFixture, TailReleasesOutputVcForNextPacket)
{
    // Two single-flit packets on the same input VC: the second can use
    // the output VC right after the first's tail releases it.
    in[kWest]->push(0, makeFlit(5, 0, 1, 5, 0));
    in[kWest]->push(1, makeFlit(6, 0, 1, 5, 0));
    for (Cycle t = 0; t <= 6; ++t)
        router->tick(t);
    int sent = 0;
    for (Cycle t = 1; t <= 7; ++t)
        sent += static_cast<int>(out[kEast]->drain(t).size());
    EXPECT_EQ(sent, 2);
}

TEST_F(VcRouterFixture, TracksBufferedFlitCounts)
{
    EXPECT_EQ(router->totalBufferedFlits(), 0);
    in[kWest]->push(0, makeFlit(7, 0, 3, 5, 0));
    in[kWest]->push(1, makeFlit(7, 1, 3, 5, 0));
    router->tick(0);
    router->tick(1);
    EXPECT_EQ(router->bufferedFlits(kWest), 1);
    EXPECT_EQ(router->bufferCapacity(), 8);
}

TEST_F(VcRouterFixture, CreditViolationUpstreamPanics)
{
    // A 9-flit packet streamed at full rate with only 4 downstream
    // credits: once the four credited flits have departed, continued
    // arrivals overflow the depth-4 VC queue — the router detects the
    // upstream protocol violation.
    EXPECT_DEATH(
        {
            for (Cycle t = 0; t <= 12; ++t) {
                if (t < 9) {
                    in[kWest]->push(
                        t, makeFlit(8, static_cast<int>(t), 9, 5, 0));
                }
                router->tick(t);
                for (PortId p = 0; p < kNumPorts; ++p) {
                    out[p]->drain(t);
                    cout[p]->drain(t);
                }
            }
        },
        "overflow");
}

}  // namespace
}  // namespace frfc
