/**
 * @file
 * Unit tests for accumulators, histograms, time averages, and warm-up
 * detection.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "stats/accumulator.hpp"
#include "stats/histogram.hpp"
#include "stats/time_average.hpp"
#include "stats/warmup.hpp"

namespace frfc {
namespace {

TEST(Accumulator, EmptyIsZero)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
    EXPECT_DOUBLE_EQ(acc.ci95HalfWidth(), 0.0);
}

TEST(Accumulator, MeanAndExtremes)
{
    Accumulator acc;
    for (double v : {2.0, 4.0, 6.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 3);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 12.0);
}

TEST(Accumulator, VarianceMatchesDefinition)
{
    Accumulator acc;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        acc.add(v);
    // Sample variance of {1,2,3,4} is 5/3.
    EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
    EXPECT_NEAR(acc.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Accumulator, MergeEqualsCombinedStream)
{
    Accumulator all;
    Accumulator a;
    Accumulator b;
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble() * 10;
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeIntoEmpty)
{
    Accumulator a;
    Accumulator b;
    b.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(Accumulator, Ci95ShrinksWithSamples)
{
    Rng rng(7);
    Accumulator small;
    Accumulator large;
    for (int i = 0; i < 100; ++i)
        small.add(rng.nextDouble());
    for (int i = 0; i < 10000; ++i)
        large.add(rng.nextDouble());
    EXPECT_LT(large.ci95HalfWidth(), small.ci95HalfWidth());
}

TEST(Accumulator, Ci95CoversTrueMean)
{
    // Uniform(0,1): mean 0.5. With 10k samples the 95% CI nearly always
    // contains 0.5 for a fixed seed.
    Rng rng(11);
    Accumulator acc;
    for (int i = 0; i < 10000; ++i)
        acc.add(rng.nextDouble());
    EXPECT_NEAR(acc.mean(), 0.5, acc.ci95HalfWidth() * 2);
}

TEST(Accumulator, ResetClears)
{
    Accumulator acc;
    acc.add(1.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
}

TEST(Histogram, CountsLandInBuckets)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.7);
    h.add(9.9);
    EXPECT_EQ(h.total(), 4);
    EXPECT_EQ(h.bucket(0), 1);
    EXPECT_EQ(h.bucket(1), 2);
    EXPECT_EQ(h.bucket(9), 1);
}

TEST(Histogram, OutOfRangeGoesToOverflow)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(10.0);
    h.add(99.0);
    EXPECT_EQ(h.underflow(), 1);
    EXPECT_EQ(h.overflow(), 2);
    EXPECT_EQ(h.total(), 3);
}

TEST(Histogram, QuantileFindsMedian)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    h.reset();
    EXPECT_EQ(h.total(), 0);
    EXPECT_EQ(h.bucket(0), 0);
}

TEST(TimeAverage, AveragesLevels)
{
    TimeAverage ta;
    ta.sample(0, 2.0);
    ta.sample(1, 4.0);
    EXPECT_DOUBLE_EQ(ta.average(), 3.0);
    EXPECT_EQ(ta.cyclesObserved(), 2);
}

TEST(TimeAverage, ThresholdFraction)
{
    TimeAverage ta;
    ta.setThreshold(5.0);
    ta.sample(0, 6.0);
    ta.sample(1, 4.0);
    ta.sample(2, 5.0);
    ta.sample(3, 1.0);
    EXPECT_DOUBLE_EQ(ta.atOrAboveFraction(), 0.5);
}

TEST(TimeAverage, ResetClears)
{
    TimeAverage ta;
    ta.sample(0, 9.0);
    ta.reset(1);
    EXPECT_DOUBLE_EQ(ta.average(), 0.0);
    EXPECT_EQ(ta.cyclesObserved(), 0);
}

TEST(Warmup, StableSignalDetectsQuickly)
{
    WarmupDetector det(100, 10, 0.05);
    Cycle now = 0;
    while (!det.stable() && now < 1000)
        det.sample(++now, 5.0);
    EXPECT_TRUE(det.stable());
    EXPECT_GE(det.stableAt(), 100);
}

TEST(Warmup, RespectsMinimumCycles)
{
    WarmupDetector det(500, 10, 0.05);
    Cycle now = 0;
    while (!det.stable() && now < 2000)
        det.sample(++now, 1.0);
    EXPECT_TRUE(det.stable());
    EXPECT_GE(det.stableAt(), 500);
}

TEST(Warmup, GrowingSignalStaysUnstable)
{
    WarmupDetector det(100, 10, 0.01);
    double level = 0.0;
    for (Cycle now = 1; now <= 500; ++now) {
        level += 1.0;  // queue growing without bound
        det.sample(now, level);
    }
    EXPECT_FALSE(det.stable());
}

TEST(Warmup, ZeroSignalIsStable)
{
    WarmupDetector det(50, 10, 0.05);
    Cycle now = 0;
    while (!det.stable() && now < 500)
        det.sample(++now, 0.0);
    EXPECT_TRUE(det.stable());
}

}  // namespace
}  // namespace frfc
