/**
 * @file
 * Unit tests for the ControlFlit message type.
 */

#include <gtest/gtest.h>

#include "frfc/control_flit.hpp"

namespace frfc {
namespace {

TEST(ControlFlit, StartsEmpty)
{
    ControlFlit cf;
    EXPECT_EQ(cf.numEntries, 0);
    EXPECT_TRUE(cf.fullyScheduled());  // vacuously
}

TEST(ControlFlit, AddEntryAppends)
{
    ControlFlit cf;
    cf.addEntry(0, 10);
    cf.addEntry(1, 12);
    ASSERT_EQ(cf.numEntries, 2);
    EXPECT_EQ(cf.entries[0].seq, 0);
    EXPECT_EQ(cf.entries[0].arrival, 10);
    EXPECT_EQ(cf.entries[1].seq, 1);
    EXPECT_FALSE(cf.entries[0].scheduled);
}

TEST(ControlFlit, FullyScheduledTracksMarks)
{
    ControlFlit cf;
    cf.addEntry(0, 10);
    cf.addEntry(1, 12);
    EXPECT_FALSE(cf.fullyScheduled());
    cf.entries[0].scheduled = true;
    EXPECT_FALSE(cf.fullyScheduled());
    cf.entries[1].scheduled = true;
    EXPECT_TRUE(cf.fullyScheduled());
}

TEST(ControlFlit, ClearScheduledMarksResetsAll)
{
    ControlFlit cf;
    cf.addEntry(0, 10);
    cf.entries[0].scheduled = true;
    cf.clearScheduledMarks();
    EXPECT_FALSE(cf.entries[0].scheduled);
    EXPECT_FALSE(cf.fullyScheduled());
}

TEST(ControlFlit, HoldsUpToMaxEntries)
{
    ControlFlit cf;
    for (int i = 0; i < kMaxEntriesPerControl; ++i)
        cf.addEntry(i, 10 + i);
    EXPECT_EQ(cf.numEntries, kMaxEntriesPerControl);
}

TEST(ControlFlitDeath, OverflowingEntriesPanics)
{
    ControlFlit cf;
    for (int i = 0; i < kMaxEntriesPerControl; ++i)
        cf.addEntry(i, 10 + i);
    EXPECT_DEATH(cf.addEntry(99, 99), "too many entries");
}

TEST(ControlFlit, ToStringShowsEntriesAndFlags)
{
    ControlFlit cf;
    cf.packet = 42;
    cf.head = true;
    cf.src = 1;
    cf.dest = 9;
    cf.addEntry(0, 17);
    const std::string s = cf.toString();
    EXPECT_NE(s.find("pkt=42"), std::string::npos);
    EXPECT_NE(s.find("H"), std::string::npos);
    EXPECT_NE(s.find("0@17"), std::string::npos);
}

}  // namespace
}  // namespace frfc
