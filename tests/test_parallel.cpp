/**
 * @file
 * Tests for the parallel experiment executor: submission-order
 * results, and — the load-bearing guarantee — bit-identical sweep
 * results for every thread count and across repeated runs.
 */

#include <gtest/gtest.h>

#include "harness/parallel.hpp"
#include "harness/presets.hpp"
#include "harness/sweep.hpp"

namespace frfc {
namespace {

RunOptions
fast(int threads)
{
    RunOptions opt;
    opt.samplePackets = 120;
    opt.minWarmup = 300;
    opt.maxWarmup = 900;
    opt.maxCycles = 30000;
    opt.threads = threads;
    return opt;
}

Config
smallMesh(const char* preset)
{
    Config cfg = baseConfig();
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    applyPreset(cfg, preset);
    return cfg;
}

void
expectBitIdentical(const std::vector<RunResult>& a,
                   const std::vector<RunResult>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].bitIdentical(b[i]))
            << "point " << i << " diverged (offered "
            << a[i].offeredFraction << " vs " << b[i].offeredFraction
            << ", latency " << a[i].avgLatency << " vs "
            << b[i].avgLatency << ")";
    }
}

TEST(ResolveThreads, ExplicitCountsPassThrough)
{
    EXPECT_EQ(resolveThreads(1), 1);
    EXPECT_EQ(resolveThreads(7), 7);
}

TEST(ResolveThreads, ZeroMeansHardware)
{
    EXPECT_GE(resolveThreads(0), 1);
}

TEST(ResolveThreadsDeath, NegativeIsFatal)
{
    EXPECT_EXIT(resolveThreads(-2), ::testing::ExitedWithCode(1),
                "run.threads");
}

TEST(ParallelExecutor, ResultsComeBackInSubmissionOrder)
{
    ParallelExecutor pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::vector<std::future<RunResult>> futures;
    const std::vector<double> loads{0.30, 0.10, 0.20, 0.05};
    const Config cfg = smallMesh("vc8");
    for (double load : loads) {
        Config point = cfg;
        point.set("workload.offered", load);
        futures.push_back(pool.submit(point, fast(4)));
    }
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const RunResult r = futures[i].get();
        EXPECT_NEAR(r.offeredFraction, loads[i], 1e-9);
    }
}

TEST(ParallelExecutor, RunExperimentsMatchesSerialLoop)
{
    const Config cfg = smallMesh("fr6");
    std::vector<Config> points;
    for (double load : {0.10, 0.25, 0.40}) {
        Config point = cfg;
        point.set("workload.offered", load);
        points.push_back(point);
    }
    std::vector<RunResult> serial;
    for (const Config& point : points)
        serial.push_back(runExperiment(point, fast(1)));
    expectBitIdentical(serial, runExperiments(points, fast(4)));
}

class CurveDeterminism : public ::testing::TestWithParam<const char*>
{
};

TEST_P(CurveDeterminism, BitIdenticalAcrossThreadCounts)
{
    const Config cfg = smallMesh(GetParam());
    const std::vector<double> loads{0.10, 0.20, 0.35, 0.50};
    const auto baseline = latencyCurve(cfg, loads, fast(1));
    for (int threads : {2, 8}) {
        const auto curve = latencyCurve(cfg, loads, fast(threads));
        expectBitIdentical(baseline, curve);
    }
}

TEST_P(CurveDeterminism, BitIdenticalAcrossRepeatedRuns)
{
    const Config cfg = smallMesh(GetParam());
    const std::vector<double> loads{0.15, 0.40};
    const auto first = latencyCurve(cfg, loads, fast(8));
    const auto second = latencyCurve(cfg, loads, fast(8));
    expectBitIdentical(first, second);
}

INSTANTIATE_TEST_SUITE_P(Schemes, CurveDeterminism,
                         ::testing::Values("vc8", "fr6"));

TEST(ParallelSweep, LatencyCurvesMatchesPerConfigCurves)
{
    const std::vector<Config> cfgs{smallMesh("vc8"), smallMesh("fr6")};
    const std::vector<double> loads{0.10, 0.30};
    const auto pooled = latencyCurves(cfgs, loads, fast(4));
    ASSERT_EQ(pooled.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        expectBitIdentical(latencyCurve(cfgs[i], loads, fast(1)),
                           pooled[i]);
}

TEST(ParallelSweep, FindSaturationIdenticalForEveryThreadCount)
{
    const Config cfg = smallMesh("vc8");
    SaturationOptions sopt;
    sopt.tolerance = 0.05;
    RunOptions opt = fast(1);
    const double serial = findSaturation(cfg, opt, sopt);
    opt.threads = 8;
    const double parallel = findSaturation(cfg, opt, sopt);
    // Same memoized probe results => the exact same refinement path.
    EXPECT_EQ(serial, parallel);
    EXPECT_GT(serial, sopt.lo);
    EXPECT_LE(serial, sopt.hi);
}

TEST(ParallelSweep, WallClockIsObservedPerRun)
{
    const Config cfg = smallMesh("vc8");
    const auto curve = latencyCurve(cfg, {0.10}, fast(2));
    ASSERT_EQ(curve.size(), 1u);
    EXPECT_GE(curve[0].wallSeconds, 0.0);
    if (curve[0].wallSeconds > 0.0) {
        EXPECT_GT(curve[0].cyclesPerSecond(), 0.0);
    }
}

TEST(RunOptionsConfig, ThreadsKeyIsRead)
{
    Config cfg;
    cfg.set("run.threads", 3);
    EXPECT_EQ(RunOptions::fromConfig(cfg).threads, 3);
    Config empty;
    EXPECT_EQ(RunOptions::fromConfig(empty).threads, 0);
}

}  // namespace
}  // namespace frfc
