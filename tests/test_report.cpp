/**
 * @file
 * Structured reports: JSON tree round-trips through the parser, CSV
 * stays scalar, quantiles land in the payload, and the serialized
 * report is independent of the worker-thread count.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "harness/json.hpp"
#include "harness/presets.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "stats/histogram.hpp"

namespace frfc {
namespace {

/** A small but fully populated report: two curves, scalars, notes. */
Report
sampleReport()
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);
    cfg.set("workload.offered", 0.3);

    RunOptions opt;
    opt.samplePackets = 200;
    opt.minWarmup = 500;
    opt.maxWarmup = 1500;
    opt.maxCycles = 30000;

    Report report("test_report", "round-trip fixture");
    report.setMode("quick");
    report.setWallSeconds(1.25);
    ReportCurve& curve = report.addCurve("vc8", cfg);
    curve.add(runExperiment(cfg, opt));

    Config fr = baseConfig();
    applyFr6(fr);
    fr.set("size_x", 4);
    fr.set("size_y", 4);
    fr.set("workload.offered", 0.3);
    ReportCurve& frc = report.addCurve("fr6", fr);
    frc.add(runExperiment(fr, opt));

    report.addScalar("measured.saturation", 72.5);
    report.addScalar("paper.saturation", 75.0);
    report.addNote("fixture note with \"quotes\" and\nnewline");
    return report;
}

TEST(JsonValue, DumpParsesBackToEqualTree)
{
    JsonValue obj = JsonValue::object();
    obj.set("int", 42);
    obj.set("frac", 0.1);  // not exactly representable
    obj.set("tiny", 1e-17);
    obj.set("neg", -3.75);
    obj.set("text", "line\nbreak \"quoted\" \\ slash");
    obj.set("flag", true);
    obj.set("nothing", JsonValue());
    JsonValue arr = JsonValue::array();
    for (int i = 0; i < 5; ++i)
        arr.push(i * 1.3);
    obj.set("arr", arr);

    for (int indent : {0, 2}) {
        std::string error;
        const JsonValue back = jsonParse(obj.dump(indent), &error);
        EXPECT_TRUE(error.empty()) << error;
        EXPECT_TRUE(back == obj) << "indent " << indent;
    }
}

TEST(JsonValue, ParseRejectsMalformedInput)
{
    for (const char* bad :
         {"", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated",
          "{\"a\":1} trailing"}) {
        std::string error;
        const JsonValue v = jsonParse(bad, &error);
        EXPECT_TRUE(v.isNull()) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(Report, JsonRoundTripsThroughParser)
{
    const Report report = sampleReport();
    const std::string text = report.toJson();

    std::string error;
    const JsonValue parsed = jsonParse(text, &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_TRUE(parsed == report.toJsonValue());
}

TEST(Report, JsonCarriesSchemaAndMetrics)
{
    const Report report = sampleReport();
    std::string error;
    const JsonValue v = jsonParse(report.toJson(), &error);
    ASSERT_TRUE(error.empty()) << error;

    EXPECT_EQ(v.at("schema_version").asNumber(), kReportSchemaVersion);
    EXPECT_EQ(v.at("name").asString(), "test_report");
    EXPECT_EQ(v.at("mode").asString(), "quick");
    EXPECT_TRUE(v.at("build").contains("git"));
    ASSERT_EQ(v.at("curves").size(), 2u);

    const JsonValue& run = v.at("curves").at(0).at("runs").at(0);
    EXPECT_TRUE(run.contains("avg_latency"));
    EXPECT_TRUE(run.contains("p50_latency"));
    EXPECT_TRUE(run.contains("p95_latency"));
    EXPECT_TRUE(run.contains("p99_latency"));
    const JsonValue& metrics = run.at("metrics");
    EXPECT_TRUE(metrics.contains("sink.flits_ejected"));
    EXPECT_GT(metrics.at("sink.flits_ejected").asNumber(), 0.0);

    // Quantiles are ordered as quantiles must be.
    EXPECT_LE(run.at("p50_latency").asNumber(),
              run.at("p95_latency").asNumber());
    EXPECT_LE(run.at("p95_latency").asNumber(),
              run.at("p99_latency").asNumber());
}

TEST(Report, CsvHasOneRowPerRunAndNoMetrics)
{
    const Report report = sampleReport();
    const std::string csv = report.toCsv();

    std::size_t lines = 0;
    for (const char c : csv)
        lines += (c == '\n') ? 1 : 0;
    EXPECT_EQ(lines, 3u);  // header + one row per curve's single run
    EXPECT_NE(csv.find("curve,"), std::string::npos);
    EXPECT_NE(csv.find("avg_latency"), std::string::npos);
    EXPECT_EQ(csv.find("metrics"), std::string::npos);
    EXPECT_EQ(csv.find("sink.flits_ejected"), std::string::npos);
}

/** Rebuild a JSON tree with every wall_seconds zeroed (the one field
 *  allowed to differ between repeated identical experiments). */
JsonValue
zeroWallSeconds(const JsonValue& v)
{
    if (v.isObject()) {
        JsonValue out = JsonValue::object();
        for (const auto& [key, value] : v.members()) {
            out.set(key, key == "wall_seconds"
                             ? JsonValue(0.0)
                             : zeroWallSeconds(value));
        }
        return out;
    }
    if (v.isArray()) {
        JsonValue out = JsonValue::array();
        for (std::size_t i = 0; i < v.size(); ++i)
            out.push(zeroWallSeconds(v.at(i)));
        return out;
    }
    return v;
}

/** The serialized payload is pinned across worker-thread counts: the
 *  parallel executor must not change any measured value or metric. */
TEST(Report, PayloadIdenticalAcrossThreadCounts)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 4);

    const std::vector<double> loads{0.1, 0.3, 0.5};
    std::vector<std::string> payloads;
    for (const int threads : {1, 8}) {
        RunOptions opt;
        opt.samplePackets = 200;
        opt.minWarmup = 500;
        opt.maxWarmup = 1500;
        opt.maxCycles = 30000;
        opt.threads = threads;

        Report report("threads_pin", "threads invariance fixture");
        ReportCurve& curve = report.addCurve("vc8", cfg);
        curve.runs = latencyCurve(cfg, loads, opt);
        payloads.push_back(
            zeroWallSeconds(report.toJsonValue()).dump(2));
    }
    ASSERT_EQ(payloads.size(), 2u);
    EXPECT_EQ(payloads[0], payloads[1]);
}

TEST(Report, WriteJsonToFileMatchesToJson)
{
    const Report report = sampleReport();
    RunOptions opt;
    opt.outFormat = "json";
    opt.outFile = "test_report_out.json";
    report.write(opt);

    std::FILE* f = std::fopen(opt.outFile.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(opt.outFile.c_str());

    EXPECT_EQ(text, report.toJson());
}

TEST(Histogram, QuantileInterpolatesWithinBuckets)
{
    // 100 samples 0..99 into unit buckets: quantile(q) should recover
    // ~the q-th sample with linear interpolation inside the bucket.
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.95), 95.0, 1.0);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
    EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);

    // One coarse bucket: interpolation is exact on the uniform mass.
    Histogram one(0.0, 10.0, 1);
    for (int i = 0; i < 10; ++i)
        one.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(one.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(one.quantile(0.25), 2.5);
}

}  // namespace
}  // namespace frfc
