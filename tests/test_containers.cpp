/**
 * @file
 * Unit tests for the flat hot-path containers of DESIGN.md §12:
 * RingQueue (power-of-two FIFO) and FlatMap (open-addressing map).
 */

#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/ring_queue.hpp"
#include "common/rng.hpp"

namespace frfc {
namespace {

TEST(RingQueue, FifoOrderAcrossGrowth)
{
    RingQueue<int> q;
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 100; ++i)
        q.push_back(i);
    EXPECT_EQ(q.size(), 100u);
    EXPECT_EQ(q.front(), 0);
    EXPECT_EQ(q.back(), 99);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(q.front(), i);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsWithoutReallocationAtSteadyState)
{
    RingQueue<int> q;
    q.reserve(8);
    // Alternate push/pop so head_ laps the backing store many times.
    int next = 0;
    int expect = 0;
    for (int round = 0; round < 1000; ++round) {
        q.push_back(next++);
        q.push_back(next++);
        EXPECT_EQ(q.front(), expect++);
        q.pop_front();
        EXPECT_EQ(q.front(), expect++);
        q.pop_front();
    }
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, IndexingAndClear)
{
    RingQueue<int> q;
    for (int i = 0; i < 10; ++i)
        q.push_back(i * i);
    for (std::size_t i = 0; i < q.size(); ++i)
        EXPECT_EQ(q[i], static_cast<int>(i * i));
    q.clear();
    EXPECT_TRUE(q.empty());
    q.push_back(7);
    EXPECT_EQ(q.front(), 7);
}

TEST(RingQueue, MatchesDequeUnderRandomOps)
{
    Rng rng(20260810, 1);
    RingQueue<int> q;
    std::deque<int> ref;
    int next = 0;
    for (int step = 0; step < 20000; ++step) {
        if (ref.empty() || rng.nextBool(0.55)) {
            q.push_back(next);
            ref.push_back(next);
            ++next;
        } else {
            ASSERT_EQ(q.front(), ref.front()) << "step " << step;
            q.pop_front();
            ref.pop_front();
        }
        ASSERT_EQ(q.size(), ref.size());
        if (!ref.empty()) {
            ASSERT_EQ(q.front(), ref.front());
            ASSERT_EQ(q.back(), ref.back());
        }
    }
}

TEST(FlatMap, InsertFindErase)
{
    FlatMap<int> map;
    EXPECT_TRUE(map.empty());
    map.findOrInsert(42, 7);
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.find(42), nullptr);
    EXPECT_EQ(*map.find(42), 7);
    EXPECT_EQ(map.find(43), nullptr);
    // findOrInsert on a present key returns the live value.
    map.findOrInsert(42, 99) = 8;
    EXPECT_EQ(*map.find(42), 8);
    map.erase(42);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.find(42), nullptr);
}

TEST(FlatMap, MatchesUnorderedMapUnderRandomOps)
{
    Rng rng(20260811, 1);
    FlatMap<int> map;
    std::unordered_map<std::int64_t, int> ref;
    for (int step = 0; step < 20000; ++step) {
        // Small key range forces collisions, growth, and dense churn.
        const auto key =
            static_cast<std::int64_t>(rng.nextBounded(512));
        const auto op = rng.nextBounded(3);
        if (op == 0) {
            const int val = static_cast<int>(rng.nextBounded(1000));
            map.findOrInsert(key, val);
            ref.try_emplace(key, val);
        } else if (op == 1) {
            int* got = map.find(key);
            const auto it = ref.find(key);
            if (it == ref.end()) {
                ASSERT_EQ(got, nullptr) << "step " << step;
            } else {
                ASSERT_NE(got, nullptr) << "step " << step;
                ASSERT_EQ(*got, it->second);
            }
        } else if (ref.count(key) != 0) {
            map.erase(key);
            ref.erase(key);
        }
        ASSERT_EQ(map.size(), ref.size());
    }
    // Full sweep: every surviving key agrees.
    for (const auto& [key, val] : ref) {
        int* got = map.find(key);
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, val);
    }
}

TEST(FlatMapDeath, NegativeKeyPanics)
{
    FlatMap<int> map;
    EXPECT_DEATH(map.findOrInsert(-2, 0), "non-negative");
}

}  // namespace
}  // namespace frfc
