/**
 * @file
 * Configuration validation: bad experiment descriptions must die with
 * actionable messages (fatal = user error), never misconfigure
 * silently.
 */

#include <gtest/gtest.h>

#include "harness/presets.hpp"
#include "network/network.hpp"

namespace frfc {
namespace {

TEST(Validation, UnknownSchemeIsFatal)
{
    Config cfg = baseConfig();
    cfg.set("scheme", "quantum");
    EXPECT_EXIT(makeNetwork(cfg), ::testing::ExitedWithCode(1),
                "unknown scheme");
}

TEST(Validation, HorizonMustCoverDataLink)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("horizon", 5);  // data link is 4 cycles
    EXPECT_EXIT(makeNetwork(cfg), ::testing::ExitedWithCode(1),
                "horizon too short");
}

TEST(Validation, FlitsPerControlBounded)
{
    Config cfg = baseConfig();
    applyFr6(cfg);
    cfg.set("flits_per_ctrl", 99);
    EXPECT_EXIT(makeNetwork(cfg), ::testing::ExitedWithCode(1),
                "flits_per_ctrl");
}

TEST(Validation, MeshMustBeAtLeastTwoByTwo)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("size_x", 1);
    EXPECT_EXIT(makeNetwork(cfg), ::testing::ExitedWithCode(1),
                "dimensions");
}

TEST(Validation, TransposeNeedsSquareTopology)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("size_x", 4);
    cfg.set("size_y", 8);
    cfg.set("traffic", "transpose");
    EXPECT_EXIT(makeNetwork(cfg), ::testing::ExitedWithCode(1),
                "square");
}

TEST(Validation, HotspotFractionBounded)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("traffic", "hotspot");
    cfg.set("hotspot_fraction", 1.5);
    EXPECT_EXIT(makeNetwork(cfg), ::testing::ExitedWithCode(1),
                "fraction");
}

TEST(Validation, HotspotNodeInRange)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("traffic", "hotspot");
    cfg.set("hotspot_node", 640);
    EXPECT_EXIT(makeNetwork(cfg), ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(Validation, OfferedLoadAboveLinkRateIsFatal)
{
    // 2.5 flits/node/cycle cannot be injected over a 1-flit/cycle
    // injection port; the Bernoulli process rejects the packet rate.
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("workload.packet_length", 1);
    cfg.set("workload.offered", 5.0);  // 5 x 0.5 = 2.5 flits/node/cycle
    EXPECT_EXIT(makeNetwork(cfg), ::testing::ExitedWithCode(1),
                "outside");
}

TEST(Validation, MissingTraceFileIsFatal)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("trace", "/nonexistent/path.tr");
    EXPECT_EXIT(makeNetwork(cfg), ::testing::ExitedWithCode(1),
                "cannot open trace");
}

TEST(Validation, UnknownInjectionIsFatal)
{
    Config cfg = baseConfig();
    applyVc8(cfg);
    cfg.set("workload.injection", "poissonish");
    EXPECT_EXIT(makeNetwork(cfg), ::testing::ExitedWithCode(1),
                "unknown injection");
}

}  // namespace
}  // namespace frfc
